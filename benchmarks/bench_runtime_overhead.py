"""Cost of the hardened execution runtime (ISSUE 7 tentpole).

Times the same jobs=1 task grid with the watchdog disarmed
(``timeout_s=None``) and armed with a deadline that never fires
(``timeout_s=300``).  Arming the watchdog adds only deadline-table
bookkeeping per drain tick — no per-task work — so the armed run must
stay within 5% of the disarmed one.  Results land in
``bench_results/runtime_overhead.txt``.
"""

import json
import tempfile
import time
from pathlib import Path

from bench_util import run_once, save_result

from repro.runtime import Task, TaskPool

_TASKS = 48
_REPEATS = 5
_WORK = 60_000


def _busy_square(n: int, path: str) -> None:
    total = 0
    for i in range(_WORK):
        total += i * i
    payload = {"n": n, "square": n * n, "checksum": total}
    Path(path).write_text(json.dumps(payload, sort_keys=True))


def _load(path: Path):
    return json.loads(path.read_text())["square"]


def _run_grid(timeout_s: float | None) -> float:
    """One fresh jobs=1 grid run; returns its wall-clock seconds."""
    with tempfile.TemporaryDirectory(prefix="bench-runtime-") as tmp:
        root = Path(tmp)
        tasks = [Task(key=f"t{n}", path=root / f"t{n}.json", fn=_busy_square,
                      args=(n, str(root / f"t{n}.json")))
                 for n in range(_TASKS)]
        pool = TaskPool(jobs=1, timeout_s=timeout_s,
                        ledger_path=root / "errors.jsonl")
        started = time.perf_counter()
        results = pool.run(tasks, loader=_load)
        elapsed = time.perf_counter() - started
        assert len(results) == _TASKS
        assert pool.last_report.failed == {}
        return elapsed


def _measure_all() -> dict[str, float]:
    # Interleave repeats (alternating order) so machine noise hits both
    # modes equally, and keep the per-mode minimum (the least-disturbed
    # sample).
    best: dict[str, float] = {}
    modes = [("disarmed", None), ("armed", 300.0)]
    for repeat in range(_REPEATS):
        for mode, timeout_s in (modes if repeat % 2 == 0
                                else reversed(modes)):
            elapsed = _run_grid(timeout_s)
            best[mode] = min(best.get(mode, elapsed), elapsed)
    return best


def bench_runtime_overhead(benchmark):
    best = run_once(benchmark, _measure_all)
    disarmed, armed = best["disarmed"], best["armed"]
    lines = [
        f"grid: {_TASKS} tasks x {_WORK} iterations, jobs=1",
        f"watchdog disarmed: {disarmed * 1e3:8.1f} ms",
        f"watchdog armed:    {armed * 1e3:8.1f} ms "
        f"({armed / disarmed:.3f}x disarmed)",
    ]
    save_result("runtime_overhead", "\n".join(lines))
    # The deadline table costs a few dict operations per drain tick, not
    # per task; 5% is the hardening budget from the issue.
    assert armed / disarmed < 1.05
