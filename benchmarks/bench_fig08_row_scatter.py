"""Fig. 8: per-row N_RH at 0.45 tRAS vs nominal N_RH (H8, M5, S1).

Paper shape: only a small fraction of rows lose > 25 % of their N_RH
(0.45 % H, 0.66 % M, 10.34 % S), and the weakest rows are not the most
sensitive ones.
"""

from bench_util import run_once, save_result

from repro.analysis.figures import fig8_row_scatter, fig8_sensitive_fraction


def bench_fig8(benchmark):
    data = run_once(benchmark, fig8_row_scatter, per_region=48)
    lines = []
    fractions = {}
    for module_id, points in data.items():
        fraction = fig8_sensitive_fraction(points)
        fractions[module_id] = fraction
        ratios = [r for _, r in points]
        lines.append(
            f"[{module_id}] rows={len(points)} "
            f">25%-drop fraction={fraction:.4f} "
            f"min_ratio={min(ratios):.3f} median_ratio="
            f"{sorted(ratios)[len(ratios) // 2]:.3f}")
    save_result("fig08_row_scatter", "\n".join(lines))
    # Shape: S has by far the largest sensitive-row fraction; H/M tiny.
    assert fractions["S1"] > fractions["H8"]
    assert fractions["S1"] > fractions["M5"]
    assert fractions["M5"] < 0.10
