"""Ablation: RowPress-aware configuration (§2.2 background).

Combined RowHammer + RowPress patterns lower the effective threshold a
mitigation must cover; the paper notes this is "practically equivalent to
configuring them for sub-1K N_RH values".  This ablation sweeps aggressor
on-times and reports the equivalent N_RH for the catalog's reference
modules — the thresholds PaCRAM-adjusted mitigations would face.
"""

from bench_util import run_once, save_result

from repro.dram.catalog import PACRAM_REFERENCE_MODULES, module_spec
from repro.dram.rowpress import equivalent_nrh, press_amplification

ON_TIMES_NS = (36.0, 360.0, 3_600.0, 7_800.0, 30_000.0)


def _collect():
    out = {}
    for module_id in sorted(set(PACRAM_REFERENCE_MODULES.values())):
        nominal = module_spec(module_id).nominal_nrh
        out[module_id] = {
            t_on: equivalent_nrh(nominal, t_on) for t_on in ON_TIMES_NS}
    return out


def bench_ablation_rowpress(benchmark):
    data = run_once(benchmark, _collect)
    lines = []
    for module_id, series in data.items():
        for t_on, nrh in series.items():
            amp = press_amplification(t_on)
            lines.append(f"{module_id}: t_on={t_on:>8.0f}ns "
                         f"amplification={amp:5.2f}x "
                         f"equivalent N_RH={nrh:8.0f}")
    save_result("ablation_rowpress", "\n".join(lines))
    for module_id, series in data.items():
        # Minimum on-time = plain hammering; one-tREFI on-time pushes the
        # reference modules to (near) sub-1K equivalent thresholds.
        nominal = module_spec(module_id).nominal_nrh
        assert series[36.0] == nominal
        assert series[7_800.0] < nominal / 5
