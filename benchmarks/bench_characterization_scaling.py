"""Scalar vs. vectorized characterization kernels (ISSUE 3 tentpole).

Runs the same characterization grid through both device kernels and
records throughput (measured row-points per second), the vectorized
kernel's model-evaluation counters, and the probe-memo hit rate into
``bench_results/characterization_scaling.txt``.

Two contracts are asserted, not just reported:

* the kernels produce bit-identical measurements (the scalar path is the
  parity oracle);
* the vectorized kernel is at least 10x faster on this grid.
"""

import time

from bench_util import run_once, save_result

from repro.characterization.sweeps import characterize_module
from repro.dram.kernels import EvalCounters

#: One vendor module, three latency points (nominal is always added),
#: 3 x 128 sampled rows — small enough for CI, large enough that the
#: vectorized kernel's fixed setup cost is amortized.
_GRID = dict(tras_factors=(0.45, 0.27), n_prs=(1,), per_region=128, seed=7)
_MODULE = "H5"


def _run_both_kernels():
    started = time.perf_counter()
    scalar = characterize_module(_MODULE, kernel="scalar", **_GRID)
    scalar_s = time.perf_counter() - started
    counters = EvalCounters()
    started = time.perf_counter()
    vectorized = characterize_module(_MODULE, kernel="vectorized",
                                     counters=counters, **_GRID)
    vectorized_s = time.perf_counter() - started
    return scalar, scalar_s, vectorized, vectorized_s, counters


def bench_characterization_scaling(benchmark):
    scalar, scalar_s, vectorized, vectorized_s, counters = run_once(
        benchmark, _run_both_kernels)
    # Parity first: a fast path that changes results is not a fast path.
    assert scalar.to_json() == vectorized.to_json()
    points = len(scalar.measurements)
    rows = len({m.row for m in scalar.measurements})
    speedup = scalar_s / vectorized_s if vectorized_s > 0 else float("inf")
    probes = counters.cache_hits + counters.model_evals
    hit_rate = counters.cache_hits / probes if probes else 0.0
    text = (
        f"grid: {_MODULE}, {rows} rows, {points} row-points\n"
        f"scalar kernel:     {scalar_s:.2f}s  "
        f"({points / scalar_s:.0f} row-points/s)\n"
        f"vectorized kernel: {vectorized_s:.2f}s  "
        f"({points / vectorized_s:.0f} row-points/s)\n"
        f"speedup: {speedup:.1f}x\n"
        f"model evals/row-point: "
        f"{counters.evals_per_row_point(1, points):.1f}\n"
        f"probe-memo hit rate: {hit_rate:.2f}")
    save_result("characterization_scaling", text)
    assert speedup >= 10.0, f"vectorized kernel only {speedup:.1f}x faster"
