"""Scalar vs. vectorized vs. array characterization kernels.

Two grids, two contracts each:

* **Parity grid** (small): all three device kernels produce bit-identical
  :meth:`~repro.characterization.results.ModuleCharacterization.to_json`
  output, and the vectorized kernel is at least 10x faster than the
  scalar oracle (the original fast-path contract).
* **Scaling grid** (larger, the five reduced tRAS factors x three
  restoration counts): the array kernel is at least 10x faster than the
  vectorized kernel — the array tier replaces the per-probe model
  evaluations of the bisection with whole-bank trait sampling and
  analytic flips-vs-none predicates, so its advantage grows with the
  number of test points per row.

Throughput (row-points per second), the vectorized kernel's
model-evaluation counters, and the probe-memo hit rate land in
``bench_results/characterization_scaling.txt``.
"""

import time

from bench_util import run_once, save_result

from repro.characterization.algorithm1 import CharacterizationConfig
from repro.characterization.sweeps import characterize_module
from repro.dram.kernels import EvalCounters

#: One vendor module, three latency points (nominal is always added),
#: 3 x 128 sampled rows — small enough for CI, large enough that the
#: vectorized kernel's fixed setup cost is amortized.
_GRID = dict(tras_factors=(0.45, 0.27), n_prs=(1,), per_region=128, seed=7)
#: The scaling grid multiplies out the test points per row (6 latency
#: factors x 3 restoration counts) and tightens the HC_first bisection
#: to single-hammer resolution: the vectorized kernel pays a model
#: evaluation per probe per bisection step, the array kernel none.
_SCALING_GRID = dict(tras_factors=(0.81, 0.64, 0.45, 0.36, 0.27),
                     n_prs=(1, 2, 4), per_region=96, seed=7,
                     config=CharacterizationConfig(iterations=1, hc_step=1))
_MODULE = "H5"


def _run_parity_grid():
    started = time.perf_counter()
    scalar = characterize_module(_MODULE, kernel="scalar", **_GRID)
    scalar_s = time.perf_counter() - started
    counters = EvalCounters()
    started = time.perf_counter()
    vectorized = characterize_module(_MODULE, kernel="vectorized",
                                     counters=counters, **_GRID)
    vectorized_s = time.perf_counter() - started
    started = time.perf_counter()
    array = characterize_module(_MODULE, kernel="array", **_GRID)
    array_s = time.perf_counter() - started
    return scalar, scalar_s, vectorized, vectorized_s, array, array_s, counters


def bench_characterization_scaling(benchmark):
    scalar, scalar_s, vectorized, vectorized_s, array, array_s, counters = \
        run_once(benchmark, _run_parity_grid)
    # Parity first: a fast path that changes results is not a fast path.
    scalar_json = scalar.to_json()
    assert scalar_json == vectorized.to_json()
    assert scalar_json == array.to_json()
    points = len(scalar.measurements)
    rows = len({m.row for m in scalar.measurements})
    speedup = scalar_s / vectorized_s if vectorized_s > 0 else float("inf")
    probes = counters.cache_hits + counters.model_evals
    hit_rate = counters.cache_hits / probes if probes else 0.0
    text = (
        f"grid: {_MODULE}, {rows} rows, {points} row-points\n"
        f"scalar kernel:     {scalar_s:.2f}s  "
        f"({points / scalar_s:.0f} row-points/s)\n"
        f"vectorized kernel: {vectorized_s:.2f}s  "
        f"({points / vectorized_s:.0f} row-points/s)\n"
        f"array kernel:      {array_s:.2f}s  "
        f"({points / array_s:.0f} row-points/s)\n"
        f"speedup (vectorized/scalar): {speedup:.1f}x\n"
        f"model evals/row-point: "
        f"{counters.evals_per_row_point(1, points):.1f}\n"
        f"probe-memo hit rate: {hit_rate:.2f}")
    save_result("characterization_scaling", text)
    assert speedup >= 10.0, f"vectorized kernel only {speedup:.1f}x faster"


def _run_scaling_grid():
    # Best-of-two per kernel: the array kernel finishes this grid in well
    # under a second, so one noisy run could distort the ratio.
    vectorized_s = array_s = float("inf")
    for _ in range(2):
        started = time.perf_counter()
        vectorized = characterize_module(_MODULE, kernel="vectorized",
                                         **_SCALING_GRID)
        vectorized_s = min(vectorized_s, time.perf_counter() - started)
        started = time.perf_counter()
        array = characterize_module(_MODULE, kernel="array", **_SCALING_GRID)
        array_s = min(array_s, time.perf_counter() - started)
    return vectorized, vectorized_s, array, array_s


def bench_characterization_array_tier(benchmark):
    vectorized, vectorized_s, array, array_s = run_once(
        benchmark, _run_scaling_grid)
    assert vectorized.to_json() == array.to_json()
    points = len(vectorized.measurements)
    speedup = vectorized_s / array_s if array_s > 0 else float("inf")
    text = (
        f"scaling grid: {_MODULE}, {points} row-points\n"
        f"vectorized kernel: {vectorized_s:.2f}s  "
        f"({points / vectorized_s:.0f} row-points/s)\n"
        f"array kernel:      {array_s:.2f}s  "
        f"({points / array_s:.0f} row-points/s)\n"
        f"speedup (array/vectorized): {speedup:.1f}x")
    save_result("characterization_array_tier", text)
    assert speedup >= 10.0, f"array kernel only {speedup:.1f}x faster"
