"""Fig. 14: fraction of rows with data-retention failures.

Paper shape: H/M retain 256/512 ms even after x10 restorations at 0.27
tRAS; S rows start failing 256 ms at 0.27 tRAS, ~472x more with x10
restorations than x1.
"""

from bench_util import run_once, save_result

from repro.analysis.figures import fig14_retention
from repro.units import MS


def bench_fig14(benchmark):
    data = run_once(benchmark, fig14_retention)
    lines = []
    for module, series in data.items():
        for (factor, n_pr, wait), fraction in sorted(series.items(),
                                                     reverse=True):
            if fraction > 0 or wait in (64 * MS, 256 * MS):
                lines.append(
                    f"[{module}] f={factor} n={n_pr} "
                    f"t={wait / MS:.0f}ms: {fraction:.2e}")
    save_result("fig14_retention", "\n".join(lines))
    s6 = data["S6"]
    assert s6[(0.36, 10, 256 * MS)] == 0.0  # obs. 4
    assert s6[(0.27, 10, 256 * MS)] > 0.0  # obs. 5
    assert s6[(0.27, 10, 256 * MS)] > s6[(0.27, 1, 256 * MS)]  # obs. 6
    assert data["M2"][(0.27, 10, 512 * MS)] == 0.0  # obs. 1/3
    assert data["H5"][(0.27, 10, 256 * MS)] == 0.0  # obs. 1
