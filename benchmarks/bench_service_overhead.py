"""Service-layer overhead bench (ISSUE 10 tentpole).

The characterization service wraps the batch orchestrators in a job
store, an event log, and a TCP frame protocol; this bench bounds what
that wrapper is allowed to cost:

* **verb round-trips** — ``submit`` of an already-done spec (the dedup
  path: digest + store lookup, zero work), ``status`` polls, and a full
  ``stream`` replay of a finished job's event log must each stay under
  their per-call ceilings;
* **per-job overhead** — running one tiny sweep through
  submit -> stream -> results, minus a direct batch run of the same
  grid, bounds everything the service adds around the computation
  (queue hand-off, state transitions, event-log writes, result
  shipping);
* **byte-identity** — the serviced rows are asserted identical to the
  batch rows while we are at it (the same contract CI's service-smoke
  job checks over the real CLI).

The persisted ``BENCH_service_overhead.json`` carries the ``ceilings``
that ``scripts/check_bench_floors.py`` re-checks in CI against the
artifact that actually shipped.
"""

import json
import statistics
import time
from pathlib import Path
from tempfile import TemporaryDirectory

from bench_util import RESULTS_DIR, run_once, save_result

from repro.analysis.sweeprunner import SweepGrid, SweepRunner
from repro.runtime import REPORT_NAME
from repro.service import JobSpec, RunOptions
from repro.service.api import CharacterizationService
from repro.service.client import ServiceClient

#: Ceilings on the service wrapper's cost.  The verb ceilings are loose
#: for one loopback round-trip (micro-benchmarks on shared CI are
#: noisy); the per-job ceiling bounds the whole submit->stream->results
#: envelope around one tiny sweep.
SUBMIT_CEILING_MS = 50.0
STATUS_CEILING_MS = 50.0
STREAM_CEILING_MS = 250.0
JOB_OVERHEAD_CEILING_S = 2.0

_VERB_REPS = 20


def _grid() -> SweepGrid:
    return SweepGrid(mitigations=("PARA",), nrh_values=(64,),
                     pacram_vendors=(None, "H"),
                     workload_sets=(("spec06.mcf",),), requests=200)


def _rows(results_dir: Path) -> dict[str, bytes]:
    return {p.name: p.read_bytes()
            for p in sorted(results_dir.glob("*.json"))
            if p.name != REPORT_NAME}


def _median_ms(fn, reps: int = _VERB_REPS) -> float:
    samples = []
    for _ in range(reps):
        started = time.perf_counter()
        fn()
        samples.append((time.perf_counter() - started) * 1000.0)
    return statistics.median(samples)


def _run_bench() -> dict:
    grid = _grid()
    payload: dict = {"points": len(grid.points())}
    with TemporaryDirectory() as tmp:
        tmp = Path(tmp)

        # The reference: the same grid straight through the batch path.
        started = time.perf_counter()
        SweepRunner(tmp / "batch", grid).run(jobs=1)
        payload["batch_s"] = time.perf_counter() - started
        batch_rows = _rows(tmp / "batch")

        service = CharacterizationService(tmp / "jobs",
                                          options=RunOptions(jobs=1),
                                          poll_s=0.01)
        service.start()
        try:
            host, port = service.bound_address
            with ServiceClient((host, port)) as client:
                # End-to-end: submit -> stream to done -> fetch results.
                spec = JobSpec("sweep", grid)
                started = time.perf_counter()
                frame = client.submit(spec)
                end = client.stream(frame["job_id"])
                served_rows = client.results(frame["job_id"])
                payload["service_s"] = time.perf_counter() - started
                assert end["state"] == "done", end
                assert served_rows == batch_rows, \
                    "serviced rows differ from the batch run"
                payload["job_overhead_s"] = \
                    payload["service_s"] - payload["batch_s"]

                # Verb round-trips against the finished job.
                job_id = frame["job_id"]
                payload["submit_ms"] = _median_ms(
                    lambda: client.submit(spec))  # dedup: zero work
                payload["status_ms"] = _median_ms(
                    lambda: client.status(job_id))
                payload["stream_ms"] = _median_ms(
                    lambda: client.stream(job_id))
                payload["events"] = len(
                    service.manager.store.events_path(job_id)
                    .read_text().splitlines())
        finally:
            service.stop()
    return payload


def bench_service_overhead(benchmark):
    payload = run_once(benchmark, _run_bench)
    payload["ceilings"] = {"submit_ms": SUBMIT_CEILING_MS,
                           "status_ms": STATUS_CEILING_MS,
                           "stream_ms": STREAM_CEILING_MS,
                           "job_overhead_s": JOB_OVERHEAD_CEILING_S}
    # The in-process asserts mirror scripts/check_bench_floors.py, which
    # re-checks the persisted payload in CI.
    for metric, ceiling in payload["ceilings"].items():
        assert payload[metric] <= ceiling, \
            f"{metric}: {payload[metric]:.2f} above ceiling {ceiling}"

    lines = [f"grid: {payload['points']} points",
             f"batch run: {payload['batch_s']:.2f}s",
             f"service submit->stream->results: "
             f"{payload['service_s']:.2f}s "
             f"(overhead {payload['job_overhead_s']:.2f}s, ceiling "
             f"{JOB_OVERHEAD_CEILING_S:.0f}s)",
             f"submit (dedup) round-trip: {payload['submit_ms']:.2f} ms "
             f"median (ceiling {SUBMIT_CEILING_MS:.0f} ms)",
             f"status round-trip: {payload['status_ms']:.2f} ms median "
             f"(ceiling {STATUS_CEILING_MS:.0f} ms)",
             f"stream replay ({payload['events']} events): "
             f"{payload['stream_ms']:.2f} ms median (ceiling "
             f"{STREAM_CEILING_MS:.0f} ms)",
             "rows byte-identical to the batch run"]
    save_result("service_overhead", "\n".join(lines))

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_service_overhead.json").write_text(
        json.dumps(payload, indent=1, sort_keys=True) + "\n")
