"""Fig. 17: system performance of PaCRAM vs N_RH.

Paper shape: PaCRAM-H improves single-core performance with every
mitigation; the gain grows as N_RH shrinks; high-performance-overhead
mitigations (PARA, RFM) benefit most.
"""

from bench_util import run_once, save_result

from repro.analysis.figures import (
    fig17_18_performance_energy,
    fig17_multicore_weighted_speedup,
)


def bench_fig17(benchmark):
    data = run_once(
        benchmark, fig17_18_performance_energy,
        mitigations=("PARA", "RFM", "Graphene"), vendors=("H",),
        nrh_values=(1024, 64, 32), requests=2_000,
        workloads=("spec06.mcf", "ycsb.a"))
    performance = data["performance"]
    lines = []
    for (mitigation, label), series in performance.items():
        row = " ".join(f"nrh={n}:{v:.4f}" for n, v in series.items())
        lines.append(f"[{mitigation} {label}] {row}")
    save_result("fig17_performance", "\n".join(lines))
    for mitigation in ("PARA", "RFM"):
        base = performance[(mitigation, "NoPaCRAM")]
        fast = performance[(mitigation, "PaCRAM-H")]
        # PaCRAM-H improves performance at low N_RH...
        assert fast[32] > base[32]
        # ...and the improvement grows as N_RH shrinks (Fig. 17 obs. 2).
        assert (fast[32] / base[32]) >= (fast[1024] / base[1024]) - 0.01
    # High-performance-overhead mitigations gain more than Graphene.
    para_gain = (performance[("PARA", "PaCRAM-H")][32]
                 / performance[("PARA", "NoPaCRAM")][32])
    graphene_gain = (performance[("Graphene", "PaCRAM-H")][32]
                     / performance[("Graphene", "NoPaCRAM")][32])
    assert para_gain >= graphene_gain - 0.02


def bench_fig17_multicore(benchmark):
    """Fig. 17 right subplot: 4-core weighted speedup of PaCRAM-H."""
    data = run_once(benchmark, fig17_multicore_weighted_speedup,
                    mitigations=("RFM",), nrh_values=(1024, 32),
                    num_mixes=2, requests=1_500)
    lines = []
    for (mitigation, label), series in data.items():
        row = " ".join(f"nrh={n}:{v:.4f}" for n, v in series.items())
        lines.append(f"[{mitigation} {label} 4-core] {row}")
    save_result("fig17_multicore", "\n".join(lines))
    series = data[("RFM", "PaCRAM-H")]
    # PaCRAM improves multiprogrammed performance at low N_RH (paper:
    # +10.84 % with RFM at N_RH = 32), and more than at high N_RH.
    assert series[32] > 1.0
    assert series[32] >= series[1024] - 0.01
