"""Ablation: FR-state granularity (per-row vs bank vs on-die).

PaCRAM's tracking granularity is a design choice: the controller-side
PaCRAM keeps one bit per *row* (8 KB SRAM per bank); the §8.5 mode-register
variant can only see per *bank*; Self-Managing DRAM keeps per-row state
inside the chip at zero controller cost.

What granularity buys: per-row tracking guarantees every row's first
preventive refresh in a t_FCRI interval uses full restoration (the §8.3
safety argument).  Bank-granular tracking only fully restores one proxy
refresh per bank per interval — it is *faster* (more refreshes run at the
reduced latency) but under-restores scattered victims, which is exactly why
§8.5 positions Self-Managing DRAM (per-row state on-die) as the clean
integration: it matches the controller-side policy refresh-for-refresh.
"""

from bench_util import run_once, save_result

from repro.core.config import PaCRAMConfig
from repro.core.ondie import OnDiePaCRAM, SelfManagingDRAMPaCRAM
from repro.core.pacram import PaCRAM
from repro.mitigations import make_mitigation
from repro.sim.config import SystemConfig
from repro.sim.system import MemorySystem
from repro.workloads.suites import workload_by_name

#: A short-t_FCRI operating point so the F/P machinery is exercised (the
#: catalog reference points have t_FCRI >> tREFW and degenerate to
#: all-partial, hiding the granularity difference).
ABLATION_CONFIG = PaCRAMConfig(
    module_id="S6", tras_factor=0.45, nrh_reduction_ratio=0.9,
    nrh_reduced=6_200, npcr=2, tfcri_ns=20_000.0)


def _run(policy_cls):
    config = SystemConfig(num_cores=1)
    policy = policy_cls(config, ABLATION_CONFIG)
    trace = workload_by_name("ycsb.a", requests=4_000)
    mitigation = make_mitigation("PARA", ABLATION_CONFIG.scaled_nrh(64))
    result = MemorySystem(config, [trace], mitigation=mitigation,
                          policy=policy).run()
    stats = result.controller_stats
    total = stats.preventive_refresh_full + stats.preventive_refresh_partial
    return {
        "ipc": result.mean_ipc,
        "full": stats.preventive_refresh_full,
        "partial": stats.preventive_refresh_partial,
        "full_fraction": stats.preventive_refresh_full / total if total else 0.0,
    }


def _collect():
    return {
        "per-row (controller)": _run(PaCRAM),
        "per-bank (mode register)": _run(OnDiePaCRAM),
        "per-row (self-managing DRAM)": _run(SelfManagingDRAMPaCRAM),
    }


def bench_ablation_fr_granularity(benchmark):
    data = run_once(benchmark, _collect)
    lines = []
    for label, metrics in data.items():
        lines.append(f"{label}: ipc={metrics['ipc']:.4f} "
                     f"full={metrics['full']} partial={metrics['partial']} "
                     f"full_fraction={metrics['full_fraction']:.3f}")
    save_result("ablation_fr_granularity", "\n".join(lines))
    controller = data["per-row (controller)"]
    bank = data["per-bank (mode register)"]
    ondie = data["per-row (self-managing DRAM)"]
    # Bank-granular tracking under-restores: it runs faster but issues far
    # fewer full-latency refreshes than the per-row safety bound requires.
    assert bank["full_fraction"] < controller["full_fraction"]
    assert bank["ipc"] >= controller["ipc"]
    # Self-Managing DRAM matches the controller-side per-row policy exactly.
    assert ondie["full"] == controller["full"]
    assert ondie["partial"] == controller["partial"]
