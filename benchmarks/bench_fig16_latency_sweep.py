"""Fig. 16: normalized IPC vs preventive-refresh latency.

Paper shape: PaCRAM-H/-M improve performance at every tested latency; the
gain grows as latency shrinks until the N_RH reduction overwhelms it (the
inflection); best-observed latencies are 0.36 (H), 0.18 (M), 0.45 (S).
"""

from bench_util import format_series, run_once, save_result

from repro.analysis.figures import fig16_latency_sweep


def bench_fig16(benchmark):
    data = run_once(
        benchmark, fig16_latency_sweep,
        mitigations=("PARA", "RFM"), vendors=("H", "M", "S"),
        nrh_values=(64,), tras_factors=(0.81, 0.45, 0.36, 0.27),
        workloads=("spec06.mcf", "ycsb.a"), requests=2_000)
    lines = []
    for (mitigation, vendor, nrh), series in data.items():
        lines.append(f"[{mitigation} PaCRAM-{vendor} nrh={nrh}] "
                     + format_series(series, key_label="f"))
    save_result("fig16_latency_sweep", "\n".join(lines))
    # PaCRAM-H with PARA at some reduced latency beats the no-PaCRAM
    # baseline (normalized IPC > 1).
    series = data[("PARA", "H", 64)]
    assert max(series.values()) > 1.0
    # Deeper reduction helps more (until the N_RH penalty kicks in).
    assert series[0.36] >= series[0.81]
