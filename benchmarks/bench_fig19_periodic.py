"""Fig. 19 (Appendix B): periodic-refresh latency reduction vs chip density.

Paper shape: reduced periodic-refresh latency improves performance and
energy for every density; the refresh overhead grows with chip density, so
the improvement is largest for the biggest chips.
"""

from bench_util import run_once, save_result

from repro.analysis.figures import fig19_periodic


def bench_fig19(benchmark):
    data = run_once(benchmark, fig19_periodic,
                    densities_gbit=(8, 64, 512),
                    latency_factors=(1.00, 0.36), requests=2_000)
    lines = []
    for density, per_factor in data.items():
        for factor, metrics in per_factor.items():
            lines.append(
                f"density={density}Gb f={factor}: "
                f"perf={metrics['performance']:.4f} "
                f"energy={metrics['energy']:.4f}")
    save_result("fig19_periodic", "\n".join(lines))
    for density in (64, 512):
        nominal = data[density][1.00]
        reduced = data[density][0.36]
        assert reduced["performance"] >= nominal["performance"]
        assert reduced["energy"] <= nominal["energy"] * 1.001
    # Refresh overhead (vs the no-refresh ideal) grows with density.
    assert data[512][1.00]["performance"] <= data[8][1.00]["performance"]
