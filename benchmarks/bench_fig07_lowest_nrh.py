"""Fig. 7: lowest observed N_RH per module vs charge-restoration latency.

Paper shape: Mfr. M modules stay flat down to 0.27 tRAS; H and S modules
lose < 3 % at their safe latencies and degrade below them.
"""

from bench_util import format_series, run_once, save_result

from repro.analysis.figures import fig7_lowest_nrh

MODULES = ("H5", "H7", "M2", "M5", "S1", "S6")


def bench_fig7(benchmark):
    data = run_once(benchmark, fig7_lowest_nrh, MODULES, per_region=12)
    lines = []
    for module_id, series in data.items():
        lines.append(f"[{module_id}] "
                     + format_series(series, key_label="f", value_format="{:.3f}"))
    save_result("fig07_lowest_nrh", "\n".join(lines))
    # Mfr. M flat at deep reduction; Mfr. S degraded.
    assert data["M2"][0.27] >= 0.9
    assert data["S6"][0.27] <= 0.7
