"""§8.4 hardware cost: PaCRAM's FR vector vs the mitigations' own area.

Paper numbers: 0.0069 mm^2 and 8 KB per 64K-row bank; 0.09 % of a high-end
Xeon for dual-rank x 16 banks; Graphene alone reaches 10.38 mm^2 (4.45 % of
the Xeon) at N_RH = 32, so PaCRAM adds only ~2 % to Graphene's area.
"""

import pytest

from bench_util import run_once, save_result

from repro.core.area import (
    fr_area_fraction_of_xeon,
    fr_area_mm2,
    fr_storage_bytes,
)
from repro.mitigations import make_mitigation


def _collect() -> dict[str, float]:
    out = {
        "pacram_mm2": fr_area_mm2(32),
        "pacram_xeon_fraction": fr_area_fraction_of_xeon(32),
        "pacram_bytes_per_bank": fr_storage_bytes(65_536),
    }
    for name in ("PARA", "RFM", "PRAC", "Hydra", "Graphene"):
        for nrh in (1024, 32):
            out[f"{name}@{nrh}_mm2"] = make_mitigation(name, nrh).area_mm2(32)
    return out


def bench_area(benchmark):
    data = run_once(benchmark, _collect)
    text = "\n".join(f"{key}: {value:.6g}" for key, value in data.items())
    save_result("area_overhead", text)
    assert data["pacram_xeon_fraction"] == pytest.approx(0.0009, rel=0.05)
    assert data["pacram_bytes_per_bank"] == 8192
    assert data["Graphene@32_mm2"] == pytest.approx(10.38, rel=0.08)
    # PaCRAM adds ~2 % on top of Graphene at N_RH = 32 (§9.2).
    assert data["pacram_mm2"] / data["Graphene@32_mm2"] == pytest.approx(
        0.02, abs=0.01)
