"""Fig. 3: fraction of execution time spent on preventive refreshes.

Paper shape: every mitigation's overhead grows as N_RH shrinks; RFM is the
worst (up to 43 %), PARA next (up to ~11 %); Graphene and Hydra spend the
least time on preventive refreshes.
"""

from bench_util import format_series, run_once, save_result

from repro.analysis.figures import fig3_preventive_overhead


def bench_fig3(benchmark):
    data = run_once(
        benchmark, fig3_preventive_overhead,
        nrh_values=(1024, 256, 64, 32), num_mixes=2, requests=2_500)
    lines = []
    for mitigation, series in data.items():
        lines.append(f"[{mitigation}]")
        lines.append(format_series(series, key_label="nrh"))
    text = "\n".join(lines)
    save_result("fig03_prevref_overhead", text)
    # Shape checks: overhead grows as N_RH shrinks; RFM worst at N_RH = 32.
    for mitigation in ("PARA", "RFM"):
        assert data[mitigation][32]["mean"] > data[mitigation][1024]["mean"]
    assert data["RFM"][32]["mean"] >= data["Graphene"][32]["mean"]
