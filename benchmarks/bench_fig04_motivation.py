"""Fig. 4: motivational time/energy analysis for modules H5 and S6.

Paper shape: total time cost has an inflection point (43 % / 28 % reduction
for the H / S modules); total energy cost likewise (40 % / 19 %).
"""

from bench_util import format_series, run_once, save_result

from repro.analysis.figures import fig4_inflection, fig4_motivation


def bench_fig4(benchmark):
    data = run_once(benchmark, fig4_motivation, ("H5", "S6"))
    lines = []
    for module_id, curves in data.items():
        lines.append(f"[{module_id}]")
        for curve_name, series in curves.items():
            lines.append(f"  {curve_name}: "
                         + format_series(series, key_label="f"))
        time_factor, time_value = fig4_inflection(curves, "time")
        energy_factor, energy_value = fig4_inflection(curves, "energy")
        lines.append(f"  time inflection at {time_factor} "
                     f"(cost {time_value:.3f})")
        lines.append(f"  energy inflection at {energy_factor} "
                     f"(cost {energy_value:.3f})")
    save_result("fig04_motivation", "\n".join(lines))
    # Shape: the time-cost inflection sits at a reduced latency (< 1.0) and
    # the cost there is below the nominal cost of 1.0.
    for module_id in ("H5", "S6"):
        factor, value = fig4_inflection(data[module_id], "time")
        assert factor < 1.0
        assert value < 1.0
