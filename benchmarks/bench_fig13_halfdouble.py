"""Fig. 13: Half-Double bitflip prevalence vs charge-restoration latency.

Paper shape: S modules show no Half-Double bitflips; H modules' affected-row
percentage *decreases* (~39 %) at 0.36 tRAS and increases sharply at 0.18;
the number of restorations barely matters.
"""

from bench_util import run_once, save_result

from repro.analysis.figures import fig13_halfdouble


def bench_fig13(benchmark):
    data = run_once(benchmark, fig13_halfdouble, per_region=64)
    lines = []
    for module, series in data.items():
        for (factor, n_pr), fraction in sorted(series.items(), reverse=True):
            lines.append(f"[{module}] f={factor} n_pr={n_pr}: "
                         f"{100 * fraction:.2f}% rows with bitflips")
    save_result("fig13_halfdouble", "\n".join(lines))
    # No Half-Double bitflips on S modules within each module's safe
    # operating envelope; the flips S shows at 0.18 tRAS (or beyond its
    # N_PCR limit, e.g. S7 restored 5x at 0.36) are retention failures
    # (Table 3/4 red cells), not Half-Double.
    for module in ("S6", "S7"):
        for (factor, n_pr), fraction in data[module].items():
            if factor >= 0.36 and n_pr == 1:
                assert fraction == 0.0, (module, factor, n_pr)
    for module in ("H7", "H8"):
        assert data[module][(0.36, 1)] < data[module][(1.00, 1)]
        assert data[module][(0.18, 1)] > data[module][(0.36, 1)]
