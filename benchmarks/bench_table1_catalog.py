"""Table 1: the tested DDR4 DRAM chip inventory (388 chips, 30 modules)."""

from bench_util import run_once, save_result

from repro.analysis.tables import render_table1


def bench_table1(benchmark):
    text = run_once(benchmark, render_table1)
    assert "Total chips: 388" in text
    save_result("table1", text)
