"""Table 3: lowest observed N_RH per module per latency — measured by this
library's Algorithm-1 pipeline and compared against the published values."""

from bench_util import run_once, save_result

from repro.analysis.tables import render_table3
from repro.characterization.sweeps import sweep_tras
from repro.dram.catalog import module_spec

MODULES = ("H5", "M2", "S6")


def bench_table3(benchmark):
    measured = run_once(benchmark, sweep_tras, MODULES, per_region=16)
    lines = ["measured (this library's pipeline, 3 modules):",
             render_table3(measured), "",
             "published (paper Appendix C):", render_table3()]
    save_result("table3_lowest_nrh", "\n".join(lines))
    # Measured lowest N_RH tracks the published values.
    for module_id in MODULES:
        spec = module_spec(module_id)
        result = measured[module_id]
        nominal = result.lowest_nrh(1.00)
        assert nominal > 0
        for factor in (0.64, 0.36):
            published_ratio = spec.nrh_ratio(factor)
            measured_ratio = (result.lowest_nrh(factor) or 0) / nominal
            assert abs(measured_ratio - published_ratio) < 0.15, \
                (module_id, factor)
