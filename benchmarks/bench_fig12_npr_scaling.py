"""Fig. 12: N_RH vs up to 15K consecutive partial restorations at 0.36 tRAS.

Paper shape: H7 and M2 stay flat to 15K; S6 degrades and shows retention
bitflips (N_RH = 0) at ~2.5K consecutive restorations.
"""

from bench_util import format_series, run_once, save_result

from repro.analysis.figures import fig12_npr_scaling


def bench_fig12(benchmark):
    data = run_once(benchmark, fig12_npr_scaling, per_region=6)
    lines = [f"[{module}] " + format_series(series, key_label="n_pr")
             for module, series in data.items()]
    save_result("fig12_npr_scaling", "\n".join(lines))
    # H7/M2 flat to 15K (within measurement resolution).
    for module in ("H7", "M2"):
        series = data[module]
        assert series[15_000] >= series[1] * 0.8, module
    # S6: N_RH = 0 at 2.5K restorations (retention bitflips), fine at 1K.
    assert data["S6"][1_000] > 0
    assert data["S6"][2_500] == 0
