"""Fig. 11: N_RH vs latency for 1/2/4/8 consecutive partial restorations.

Paper shape: H and M unaffected by the restoration count; S trends downward
with more restorations; repeating a 0.27-tRAS restoration causes retention
bitflips for S.
"""

from bench_util import run_once, save_result

from repro.analysis.figures import fig11_repeated_pcr


def bench_fig11(benchmark):
    data = run_once(benchmark, fig11_repeated_pcr, ("H5", "M2", "S6"),
                    per_region=8)
    lines = []
    for vendor, per_factor in data.items():
        lines.append(f"[Mfr. {vendor}]")
        for factor, per_npr in sorted(per_factor.items(), reverse=True):
            for n_pr, stats in sorted(per_npr.items()):
                lines.append(f"  f={factor} n_pr={n_pr}: {stats.row()}")
    save_result("fig11_repeated_pcr", "\n".join(lines))
    # S trends downward with restorations at 0.36; M does not.
    s_series = data["S"][0.36]
    assert s_series[8].median <= s_series[1].median + 1e-9
    m_series = data["M"][0.36]
    assert abs(m_series[8].median - m_series[1].median) < 0.05
    # S at 0.27 with repeats -> retention bitflips (minimum hits zero).
    assert data["S"][0.27][2].minimum == 0.0
