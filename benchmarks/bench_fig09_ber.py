"""Fig. 9: normalized RowHammer BER vs charge-restoration latency.

Paper shape: BER grows superlinearly as restoration weakens for Mfrs. H and
S; < 3 % growth at 0.64 (H), 0.18 (M), and 0.81 (S) tRAS.
"""

from bench_util import run_once, save_result

from repro.analysis.figures import fig9_ber_boxes

MODULES = ("H5", "H7", "M2", "M5", "S1", "S6")


def bench_fig9(benchmark):
    boxes = run_once(benchmark, fig9_ber_boxes, MODULES, per_region=12)
    lines = []
    for vendor, per_factor in boxes.items():
        lines.append(f"[Mfr. {vendor}]")
        for factor, stats in sorted(per_factor.items(), reverse=True):
            lines.append(f"  f={factor}: {stats.row()}")
    save_result("fig09_ber", "\n".join(lines))
    # Takeaway 3: BER at the vendor's BER-safe latency is ~unchanged; the
    # deepest reductions blow it up for S.
    assert boxes["M"][0.18].median <= 1.2
    assert boxes["S"][0.27].median > boxes["S"][1.00].median
