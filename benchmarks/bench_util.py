"""Shared helpers for the benchmark harness.

Every benchmark regenerates the data behind one of the paper's tables or
figures at laptop scale, prints the series (visible with ``pytest -s``), and
writes them to ``bench_results/<experiment>.txt`` so the tee'd benchmark log
and the series both survive a run.  EXPERIMENTS.md records how each measured
shape compares with the paper.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent.parent / "bench_results"


def save_result(experiment: str, text: str) -> None:
    """Print a result block and persist it under bench_results/."""
    banner = f"===== {experiment} ====="
    print(f"\n{banner}\n{text}\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{experiment}.txt").write_text(text + "\n")


def format_series(series: dict, *, key_label: str = "x",
                  value_format: str = "{:.4f}") -> str:
    """Render a {x: value} or {x: dict} series as aligned rows."""
    lines = []
    for key in series:
        value = series[key]
        if isinstance(value, dict):
            parts = " ".join(f"{k}={_fmt(v, value_format)}"
                             for k, v in value.items())
            lines.append(f"{key_label}={key}: {parts}")
        else:
            lines.append(f"{key_label}={key}: {_fmt(value, value_format)}")
    return "\n".join(lines)


def _fmt(value, value_format: str) -> str:
    if isinstance(value, float):
        return value_format.format(value)
    return str(value)


def run_once(benchmark, func, *args, **kwargs):
    """Run an expensive experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
