"""Runtime cost of the protocol checker (ISSUE 2 tentpole).

Times the same attack simulation with the checker detached (``off``),
attached in ``tolerant`` mode, and — as the baseline — on a controller
built before observers existed would run: ``off`` must stay within noise
of that baseline, because the only instrumentation on the hot path is one
``observer is not None`` check per command site.  Results land in
``bench_results/checker_overhead.txt``; EXPERIMENTS.md records the
measured ratios.
"""

import time

from bench_util import run_once, save_result

from repro.mitigations import make_mitigation
from repro.sim.config import SystemConfig
from repro.sim.system import MemorySystem
from repro.validation import ProtocolChecker
from repro.workloads.attack import double_sided_trace

_HAMMERS = 30_000
_REPEATS = 3


def _simulate(checker_mode: str) -> float:
    """One full attack simulation; returns its wall-clock seconds."""
    config = SystemConfig(num_cores=1)
    mitigation = make_mitigation("Graphene", nrh=512)
    checker = (ProtocolChecker(config, mode=checker_mode,
                               mitigation=mitigation)
               if checker_mode != "off" else None)
    trace = double_sided_trace(config, hammers=_HAMMERS)
    system = MemorySystem(config, [trace], mitigation=mitigation,
                          observer=checker)
    started = time.perf_counter()
    result = system.run()
    elapsed = time.perf_counter() - started
    assert result.protocol_violations == []
    if checker is not None:
        assert checker.violation_count == 0
    return elapsed


def _measure_all() -> dict[str, float]:
    # Interleave repeats so machine noise hits every mode equally, and
    # keep the per-mode minimum (the least-disturbed sample).
    best: dict[str, float] = {}
    for _ in range(_REPEATS):
        for mode in ("off", "tolerant", "strict"):
            elapsed = _simulate(mode)
            best[mode] = min(best.get(mode, elapsed), elapsed)
    return best


def bench_checker_overhead(benchmark):
    best = run_once(benchmark, _measure_all)
    off, tolerant, strict = best["off"], best["tolerant"], best["strict"]
    lines = [
        f"attack: double-sided, {_HAMMERS} hammer pairs, Graphene nrh=512",
        f"checker off:      {off * 1e3:8.1f} ms",
        f"checker tolerant: {tolerant * 1e3:8.1f} ms "
        f"({tolerant / off:.2f}x off)",
        f"checker strict:   {strict * 1e3:8.1f} ms "
        f"({strict / off:.2f}x off)",
    ]
    save_result("checker_overhead", "\n".join(lines))
    # 'off' is one pointer check per command site; on a clean run strict
    # does the same work as tolerant.  Generous bounds keep CI machines
    # with noisy neighbors from flaking.
    assert tolerant / off < 5.0
