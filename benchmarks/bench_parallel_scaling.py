"""Parallel scaling of the fault-tolerant sweep engine (ISSUE 1 tentpole).

Runs the same evaluation grid at jobs = 1, 2, 4 and records wall-clock
speedup into ``bench_results/parallel_scaling.txt``.  The speedup you see
depends on the machine (on a single-core container the parallel runs only
pay process overhead); what is asserted is the engine's contract — row
files are bit-identical across all job counts.
"""

import os
import time
from pathlib import Path
from tempfile import TemporaryDirectory

from bench_util import run_once, save_result

from repro.analysis.sweeprunner import SweepGrid, SweepRunner
from repro.runtime import REPORT_NAME

_JOBS = (1, 2, 4)


def _scaling_grid() -> SweepGrid:
    return SweepGrid(mitigations=("PARA", "RFM", "Graphene", "Hydra"),
                     nrh_values=(1024, 64), pacram_vendors=(None, "H"),
                     workload_sets=(("spec06.mcf",),), requests=800)


def _run_all_job_counts() -> dict[int, tuple[float, dict[str, bytes]]]:
    grid = _scaling_grid()
    timings: dict[int, tuple[float, dict[str, bytes]]] = {}
    with TemporaryDirectory() as tmp:
        for jobs in _JOBS:
            results_dir = Path(tmp) / f"jobs{jobs}"
            runner = SweepRunner(results_dir, grid)
            started = time.perf_counter()
            runner.run(jobs=jobs)
            elapsed = time.perf_counter() - started
            rows = {p.name: p.read_bytes()
                    for p in sorted(results_dir.glob("*.json"))
                    if p.name != REPORT_NAME}  # run metadata, not a row
            timings[jobs] = (elapsed, rows)
    return timings


def bench_parallel_scaling(benchmark):
    timings = run_once(benchmark, _run_all_job_counts)
    serial_elapsed, serial_rows = timings[1]
    points = len(_scaling_grid().points())
    cores = os.cpu_count() or 1
    lines = [f"grid: {points} points, cores on this machine: {cores}"]
    if cores == 1:
        # A speedup figure measured on one core is noise, not scaling —
        # parallel jobs only pay process overhead here.  Record the
        # timings without a speedup claim.
        lines.append("single-core machine: scaling is not measurable; "
                     "timings below carry no speedup claim")
    for jobs in _JOBS:
        elapsed, rows = timings[jobs]
        if cores == 1:
            lines.append(f"jobs={jobs}: {elapsed:.2f}s  (unscalable here)")
        else:
            speedup = serial_elapsed / elapsed if elapsed > 0 else float("inf")
            lines.append(f"jobs={jobs}: {elapsed:.2f}s  "
                         f"speedup over jobs=1: {speedup:.2f}x")
        # The contract that matters everywhere: parallel output is
        # bit-identical to the serial run.
        assert rows == serial_rows
    save_result("parallel_scaling", "\n".join(lines))
