"""Fleet-scheduler scaling and overhead bench (ISSUE 9 tentpole).

Runs the reference evaluation grid through both scheduler backends and
measures what the distributed layer is allowed to cost:

* **byte-identity** — the 16-point grid's rows from a loopback fleet
  (N workers over TCP) are bit-identical to the local serial run;
* **coordinator overhead** — a stream of trivial tasks bounds the
  per-task cost of leasing, framing, shipping results back, and atomic
  publishing; the median must stay under ``OVERHEAD_CEILING_MS``;
* **payload amortization** — a warm worker's lease spec (config interned
  as a content-addressed blob it already holds) must be smaller than the
  naive wire baseline: the whole ``Task`` pickled, which is what a
  pickle-shipping scheduler would put on the socket per lease.

Wall-clock *speedup* is deliberately not asserted: on a single-core
container parallel workers only pay overhead, and the numbers would be
noise.  The persisted ``BENCH_parallel_scaling.json`` carries ``floors``
(payload ratio) and ``ceilings`` (overhead) that
``scripts/check_bench_floors.py`` re-checks in CI against the artifact
that actually shipped.
"""

import json
import os
import pickle
import statistics
import time
from pathlib import Path
from tempfile import TemporaryDirectory

from bench_util import RESULTS_DIR, run_once, save_result

from repro.analysis.sweeprunner import SweepGrid, SweepRunner
from repro.characterization.campaign import (
    CampaignConfig,
    CharacterizationCampaign,
)
from repro.runtime import REPORT_NAME, Task, make_scheduler
from repro.runtime.distributed import echo_point
from repro.runtime.wire import canonical_blob, referenced_blobs

#: Loopback fleet sizes exercised for byte-identity.
_FLEETS = (1, 2, 4)

#: Ceiling on the coordinator's per-task cost (lease + wire + publish).
OVERHEAD_CEILING_MS = 25.0

#: Trivial tasks per overhead repetition, and repetitions medianed over.
_OVERHEAD_TASKS = 32
_OVERHEAD_REPS = 3


def _scaling_grid() -> SweepGrid:
    """The 16-point reference grid (4 mitigations x 2 N_RH x 2 configs)."""
    return SweepGrid(mitigations=("PARA", "RFM", "Graphene", "Hydra"),
                     nrh_values=(1024, 64), pacram_vendors=(None, "H"),
                     workload_sets=(("spec06.mcf",),), requests=400)


def _rows(results_dir: Path) -> dict[str, bytes]:
    return {p.name: p.read_bytes()
            for p in sorted(results_dir.glob("*.json"))
            if p.name != REPORT_NAME}  # run metadata, not a row


def _load_echo(path: Path) -> int:
    return json.loads(path.read_text())["echo"]


def _bench_identity(tmp: Path) -> dict:
    """Grid rows through local vs fleet(N): byte-identical, timed."""
    grid = _scaling_grid()
    local_dir = tmp / "local"
    started = time.perf_counter()
    SweepRunner(local_dir, grid).run(jobs=1)
    local_s = time.perf_counter() - started
    local_rows = _rows(local_dir)
    fleet_s = {}
    for workers in _FLEETS:
        fleet_dir = tmp / f"fleet{workers}"
        started = time.perf_counter()
        SweepRunner(fleet_dir, grid).run(scheduler="fleet", workers=workers)
        fleet_s[workers] = time.perf_counter() - started
        assert _rows(fleet_dir) == local_rows, \
            f"fleet({workers}) rows differ from the local run"
    return {"points": len(grid.points()), "local_s": local_s,
            "fleet_s": fleet_s}


def _bench_overhead(tmp: Path) -> dict:
    """Median per-task coordinator cost over a stream of trivial tasks."""
    per_task_ms = []
    for rep in range(_OVERHEAD_REPS):
        run_dir = tmp / f"overhead{rep}"
        tasks = [Task(key=f"t{n}", path=run_dir / f"t{n}.json",
                      fn=echo_point, args=(n, str(run_dir / f"t{n}.json")))
                 for n in range(_OVERHEAD_TASKS)]
        pool = make_scheduler("fleet", workers=1,
                              lease_batch=_OVERHEAD_TASKS // 4)
        started = time.perf_counter()
        pool.run(tasks, loader=_load_echo)
        elapsed = time.perf_counter() - started
        per_task_ms.append(elapsed / _OVERHEAD_TASKS * 1000.0)
    return {"overhead_ms_per_task": statistics.median(per_task_ms),
            "overhead_ms_reps": per_task_ms}


def _bench_payload(tmp: Path) -> dict:
    """Warm-lease spec size vs the pickled-Task wire baseline."""
    from repro.runtime.distributed import _FleetRun

    class _SpecOnly:
        blob_table: dict = {}

    encoder = _SpecOnly()
    sizes = {}
    campaign = CharacterizationCampaign(
        tmp / "payload", CampaignConfig(per_region=4))
    sweep = SweepRunner(tmp / "payload", _scaling_grid())
    for label, task in (("campaign", campaign._task("S6")),
                        ("sweep", sweep._task(_scaling_grid().points()[0]))):
        encoder.blob_table = {}
        spec = _FleetRun.__dict__["_spec"](encoder, task, 1)
        assert referenced_blobs(spec["args"]), \
            f"{label} config was not blob-interned"
        warm = len(canonical_blob(spec).encode())
        cold = warm + sum(len(canonical_blob(b).encode())
                          for b in encoder.blob_table.values())
        # A pickle-based scheduler ships the whole Task per lease; the
        # spec carries the same information (fn, args, fallback, key,
        # path), so that is the like-for-like baseline.
        pickled = len(pickle.dumps(task))
        sizes[label] = {"warm_bytes": warm, "cold_bytes": cold,
                        "pickled_bytes": pickled,
                        "ratio": pickled / warm}
    return {"payloads": sizes,
            "payload_ratio": min(entry["ratio"] for entry in sizes.values())}


def _run_bench() -> dict:
    with TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        payload = {}
        payload.update(_bench_identity(tmp))
        payload.update(_bench_overhead(tmp))
        payload.update(_bench_payload(tmp))
    return payload


def bench_parallel_scaling(benchmark):
    payload = run_once(benchmark, _run_bench)
    payload["floors"] = {"payload_ratio": 1.0}
    payload["ceilings"] = {"overhead_ms_per_task": OVERHEAD_CEILING_MS}
    # The in-process asserts mirror scripts/check_bench_floors.py, which
    # re-checks the persisted payload in CI.
    assert payload["payload_ratio"] >= payload["floors"]["payload_ratio"]
    assert payload["overhead_ms_per_task"] <= OVERHEAD_CEILING_MS

    cores = os.cpu_count() or 1
    lines = [f"grid: {payload['points']} points, cores: {cores}",
             f"local jobs=1: {payload['local_s']:.2f}s"]
    if cores == 1:
        lines.append("single-core machine: fleet timings carry no speedup "
                     "claim (workers only pay overhead here)")
    for workers, elapsed in payload["fleet_s"].items():
        lines.append(f"fleet workers={workers}: {elapsed:.2f}s "
                     f"(rows byte-identical to local)")
    lines.append(f"coordinator overhead: "
                 f"{payload['overhead_ms_per_task']:.2f} ms/task median "
                 f"(ceiling {OVERHEAD_CEILING_MS:.0f} ms)")
    for label, entry in payload["payloads"].items():
        lines.append(f"{label} lease: warm {entry['warm_bytes']} B, cold "
                     f"{entry['cold_bytes']} B, pickled "
                     f"{entry['pickled_bytes']} B "
                     f"({entry['ratio']:.1f}x smaller warm)")
    save_result("parallel_scaling", "\n".join(lines))

    RESULTS_DIR.mkdir(exist_ok=True)
    persisted = dict(payload)
    persisted["fleet_s"] = {str(k): v for k, v in payload["fleet_s"].items()}
    (RESULTS_DIR / "BENCH_parallel_scaling.json").write_text(
        json.dumps(persisted, indent=1, sort_keys=True) + "\n")
