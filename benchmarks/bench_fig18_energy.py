"""Fig. 18: DRAM energy of PaCRAM vs N_RH.

Paper shape: PaCRAM-H and -M reduce DRAM energy with every mitigation; all
configurations consume more energy as N_RH shrinks.
"""

from bench_util import run_once, save_result

from repro.analysis.figures import fig17_18_performance_energy


def bench_fig18(benchmark):
    data = run_once(
        benchmark, fig17_18_performance_energy,
        mitigations=("PARA", "RFM"), vendors=("H", "M"),
        nrh_values=(1024, 32), requests=2_000,
        workloads=("spec06.mcf", "ycsb.a"))
    energy = data["energy"]
    lines = []
    for (mitigation, label), series in energy.items():
        row = " ".join(f"nrh={n}:{v:.4f}" for n, v in series.items())
        lines.append(f"[{mitigation} {label}] {row}")
    save_result("fig18_energy", "\n".join(lines))
    for mitigation in ("PARA", "RFM"):
        for vendor in ("H", "M"):
            base = energy[(mitigation, "NoPaCRAM")]
            fast = energy[(mitigation, f"PaCRAM-{vendor}")]
            assert fast[32] < base[32], (mitigation, vendor)
        # Fig. 18 obs. 3: energy grows as N_RH shrinks.
        assert energy[(mitigation, "NoPaCRAM")][32] >= \
            energy[(mitigation, "NoPaCRAM")][1024]
