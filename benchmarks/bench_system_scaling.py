"""Scalar vs. batched vs. array system-simulation kernels + memoization.

Runs the same fig16-style workload sweep (mitigation x tRAS factor, each
point normalized against its no-PaCRAM baseline) three ways:

* **before** — the scalar per-request oracle, every point recomputing its
  baseline (the pre-fast-path cost model);
* **batched** — the batched kernel with a shared
  :class:`~repro.analysis.baselines.BaselineCache`, so the baseline runs
  once per (mitigation, workload) across the whole factor sweep;
* **array** — the structure-of-arrays kernel
  (:mod:`repro.sim.arraykernel`) with the same memoized baselines.

Four contracts are asserted, not just reported:

* all three phases produce identical normalized series (the scalar path
  is the parity oracle, and memoized baselines must replay exactly);
* the fig17/fig18 and fig19 builders produce byte-identical rendered
  output under any kernel;
* the batched workflow is at least 5x faster end-to-end on this sweep;
* the array workflow is at least 6x faster end-to-end, and strictly
  faster than the batched workflow.

A note on the array floor: the array tier's kernel-level margin over
the batched tier is 1.2-1.45x on this sweep, not 2x, and cannot reach
2x while staying bit-exact — component accounting shows more than half
of the batched tier's per-request time is spent in costs both fast
tiers share verbatim (mitigation plugin calls, C-level ``bisect`` /
``insort`` queue ops, latency and energy bookkeeping), which bounds any
bit-exact rewrite of the remainder below 2x.  The workflow headline
(naive scalar recompute vs. fast kernel + memoized baselines) is where
the array tier's floor sits a full point above the batched tier's.

Every phase is timed best-of-two: the ratios have small denominators,
so a single noisy run could flake the floors.

Results land in ``bench_results/system_scaling.txt`` plus a
machine-readable ``bench_results/BENCH_system_scaling.json``.
"""

import json
import time

from bench_util import RESULTS_DIR, run_once, save_result

from repro.analysis.baselines import BaselineCache
from repro.analysis.figures import fig17_18_performance_energy, fig19_periodic
from repro.analysis.runner import pacram_reference_config, run_simulation

_TRAS_FACTORS = (0.81, 0.64, 0.45, 0.36, 0.27)
_VENDORS = ("H", "S")
_MITIGATIONS = ("PARA", "Graphene")
_WORKLOADS = ("spec06.mcf", "ycsb.a")
_NRH = 64
_REQUESTS = 2_500
#: Asserted end-to-end workflow-speedup floors (naive scalar sweep vs.
#: fast kernel + memoized baselines).
_BATCHED_FLOOR = 5.0
_ARRAY_FLOOR = 6.0


def _sweep(sim_kernel, cache):
    """One normalized-IPC sweep: {(mitigation, vendor, factor): ratio}."""
    out = {}
    for mitigation in _MITIGATIONS:
        for vendor in _VENDORS:
            for factor in _TRAS_FACTORS:
                # The naive workflow recomputes this baseline at every
                # (vendor, factor) cell; the cache collapses the repeats
                # to one simulation per (mitigation, workload).
                baselines = {
                    name: run_simulation(
                        (name,), mitigation=mitigation, nrh=_NRH,
                        requests=_REQUESTS, sim_kernel=sim_kernel,
                        cache=cache).mean_ipc
                    for name in _WORKLOADS}
                pacram = pacram_reference_config(vendor, factor)
                ratios = [
                    run_simulation(
                        (name,), mitigation=mitigation, nrh=_NRH,
                        pacram=pacram, requests=_REQUESTS,
                        sim_kernel=sim_kernel,
                        cache=cache).mean_ipc / baselines[name]
                    for name in _WORKLOADS]
                out[(mitigation, vendor, factor)] = \
                    sum(ratios) / len(ratios)
    return out


def _timed_sweep(sim_kernel, make_cache, *, rounds=2):
    best_s = float("inf")
    for _ in range(rounds):
        cache = make_cache()
        started = time.perf_counter()
        sweep = _sweep(sim_kernel, cache=cache)
        best_s = min(best_s, time.perf_counter() - started)
    return sweep, best_s, cache


def _run_all_phases():
    before, before_s, _ = _timed_sweep("scalar", lambda: None)
    after, after_s, cache = _timed_sweep("batched", BaselineCache)
    array, array_s, _ = _timed_sweep("array", BaselineCache)
    return before, before_s, after, after_s, array, array_s, cache


def bench_system_scaling(benchmark):
    before, before_s, after, after_s, array, array_s, cache = run_once(
        benchmark, _run_all_phases)
    # Parity first: a fast path that changes results is not a fast path.
    assert before == after
    assert before == array
    points = len(before)
    sims_before = points * 2 * len(_WORKLOADS)
    speedup = before_s / after_s if after_s > 0 else float("inf")
    array_speedup = before_s / array_s if array_s > 0 else float("inf")
    array_vs_batched = after_s / array_s if array_s > 0 else float("inf")
    text = (
        f"sweep: {len(_MITIGATIONS)} mitigations x {len(_VENDORS)} vendors "
        f"x {len(_TRAS_FACTORS)} tRAS factors x {len(_WORKLOADS)} "
        f"workloads ({sims_before} simulations naively)\n"
        f"scalar kernel, no cache:   {before_s:.2f}s\n"
        f"batched kernel + memoized baselines: {after_s:.2f}s\n"
        f"array kernel + memoized baselines:   {array_s:.2f}s\n"
        f"speedup (batched): {speedup:.1f}x\n"
        f"speedup (array):   {array_speedup:.1f}x "
        f"({array_vs_batched:.2f}x over batched)\n"
        f"baseline-cache hits: {cache.hits}  misses: {cache.misses}  "
        f"hit rate: {cache.hit_rate():.2f}")
    save_result("system_scaling", text)
    payload = {
        "speedup": speedup,
        "array_speedup": array_speedup,
        "array_vs_batched": array_vs_batched,
        "before_s": before_s,
        "after_s": after_s,
        "array_s": array_s,
        "points": points,
        "cache": cache.stats(),
        "series": {f"{m}@{v_}@{f}": v
                   for (m, v_, f), v in after.items()},
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_system_scaling.json").write_text(
        json.dumps(payload, indent=1, sort_keys=True) + "\n")
    assert speedup >= _BATCHED_FLOOR, f"fast path only {speedup:.1f}x faster"
    assert array_speedup >= _ARRAY_FLOOR, (
        f"array workflow only {array_speedup:.1f}x faster "
        f"(floor {_ARRAY_FLOOR:.0f}x)")
    assert array_s < after_s, (
        f"array phase ({array_s:.2f}s) slower than batched ({after_s:.2f}s)")


def bench_fig_builders_kernel_parity(benchmark):
    """fig17/fig18/fig19 render byte-identically under every kernel."""

    def _render_all(sim_kernel):
        data = fig17_18_performance_energy(
            mitigations=("PARA",), vendors=("H",), nrh_values=(1024, 64),
            workloads=("spec06.mcf",), requests=800, sim_kernel=sim_kernel)
        lines = []
        for figure in ("performance", "energy"):
            for (mitigation, label), series in data[figure].items():
                row = " ".join(f"nrh={n}:{v:.4f}"
                               for n, v in series.items())
                lines.append(f"[{figure} {mitigation} {label}] {row}")
        periodic = fig19_periodic(densities_gbit=(8, 64),
                                  latency_factors=(1.00, 0.36),
                                  requests=800, sim_kernel=sim_kernel)
        for density, per_factor in periodic.items():
            for factor, metrics in per_factor.items():
                lines.append(f"density={density}Gb f={factor}: "
                             f"perf={metrics['performance']:.4f} "
                             f"energy={metrics['energy']:.4f}")
        return "\n".join(lines).encode()

    def _all():
        return (_render_all("scalar"), _render_all("batched"),
                _render_all("array"))

    scalar_bytes, batched_bytes, array_bytes = run_once(benchmark, _all)
    assert scalar_bytes == batched_bytes
    assert scalar_bytes == array_bytes
