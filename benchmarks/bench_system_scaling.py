"""Scalar vs. batched vs. array system-simulation kernels + memoization.

Runs the same fig16-style workload sweep (mitigation x tRAS factor, each
point normalized against its no-PaCRAM baseline) three ways:

* **before** — the scalar per-request oracle, every point recomputing its
  baseline (the pre-fast-path cost model);
* **batched** — the batched kernel with a shared
  :class:`~repro.analysis.baselines.BaselineCache`, so the baseline runs
  once per (mitigation, workload) across the whole factor sweep;
* **array** — the structure-of-arrays kernel
  (:mod:`repro.sim.arraykernel`) with the same memoized baselines.

Five contracts are asserted, not just reported:

* all three phases produce identical normalized series (the scalar path
  is the parity oracle, and memoized baselines must replay exactly);
* the fig17/fig18 and fig19 builders produce byte-identical rendered
  output under any kernel;
* the batched workflow is at least 5x faster end-to-end on this sweep;
* the array workflow is at least 6x faster end-to-end, and strictly
  faster than the batched workflow;
* on the mitigation-heavy kernel-level sweep (double-sided attack,
  per-mechanism ``service_batch`` vs. ``service_array`` with cores and
  queues pre-built), the array tier's aggregate margin over the batched
  tier is at least 2.5x across the epoch-batchable mechanisms.

The 2.5x kernel-level margin is what epoch dispatch bought.  The costs
both fast tiers used to share verbatim — a mitigation plugin call, two
``bisect`` probes through a Python key callable, and latency/energy
bookkeeping on every request — are gone from the array tier's steady
state: mechanisms grant an ``epoch_credit()`` of guaranteed action-free
activations, the kernel buffers whole epochs into columnar arrays and
flushes them through one ``on_activation_epoch`` call, latency folds
per-epoch via ``np.unique``, and a single-queued-read fast path skips
the scheduler gate entirely.  Hydra is measured and reported but sits
outside the asserted aggregate: once any row group goes hot, its
RCC/RCT tiers are order-dependent (LRU recency plus metadata accesses
on cache misses), so its honest epoch credit is zero until the next
refresh-window reset and it steps scalar through the hot phase
(~2.2x measured, structurally capped).

Every workflow phase is timed best-of-two and the kernel-level sweep
interleaved best-of-four: the ratios have small denominators, so a
single noisy run could flake the floors.

Results land in ``bench_results/system_scaling.txt`` plus a
machine-readable ``bench_results/BENCH_system_scaling.json``.
"""

import gc
import json
import time

from bench_util import RESULTS_DIR, run_once, save_result

from repro.analysis.baselines import BaselineCache
from repro.analysis.figures import fig17_18_performance_energy, fig19_periodic
from repro.analysis.runner import pacram_reference_config, run_simulation
from repro.mitigations import make_mitigation
from repro.sim.arraykernel import ArrayCore, SharedQueues, service_array
from repro.sim.config import SystemConfig
from repro.sim.kernels import BatchCore, service_batch
from repro.sim.system import MemorySystem
from repro.workloads.attack import double_sided_trace

_TRAS_FACTORS = (0.81, 0.64, 0.45, 0.36, 0.27)
_VENDORS = ("H", "S")
_MITIGATIONS = ("PARA", "Graphene")
_WORKLOADS = ("spec06.mcf", "ycsb.a")
_NRH = 64
_REQUESTS = 2_500
#: Asserted end-to-end workflow-speedup floors (naive scalar sweep vs.
#: fast kernel + memoized baselines).
_BATCHED_FLOOR = 5.0
_ARRAY_FLOOR = 6.0

#: Mitigation-heavy kernel-level sweep: a single-core double-sided attack
#: at high nRH keeps every mechanism live (counters moving, epochs
#: bounded) without triggering so often that both kernels degenerate to
#: the same scalar boundary work.
_EPOCH_NRH = 1024
_EPOCH_HAMMERS = 6_000
_EPOCH_MECHANISMS = ("PARA", "Graphene", "Hydra", "RFM", "PRAC")
#: Mechanisms whose epoch credit stays meaningfully large on this sweep.
#: Hydra is measured and reported but excluded from the asserted
#: aggregate: once a row group goes hot its RCC/RCT tiers are
#: order-dependent, so its honest credit is zero until the refresh
#: window resets (see the module docstring).
_EPOCH_BATCHABLE = ("PARA", "Graphene", "RFM", "PRAC")
#: Asserted aggregate array-over-batched margin across _EPOCH_BATCHABLE.
_EPOCH_MARGIN_FLOOR = 2.5
_EPOCH_ROUNDS = 4
#: Whole sweeps retried (best-of) when a machine-wide blip depresses one.
_EPOCH_ATTEMPTS = 3


def _sweep(sim_kernel, cache):
    """One normalized-IPC sweep: {(mitigation, vendor, factor): ratio}."""
    out = {}
    for mitigation in _MITIGATIONS:
        for vendor in _VENDORS:
            for factor in _TRAS_FACTORS:
                # The naive workflow recomputes this baseline at every
                # (vendor, factor) cell; the cache collapses the repeats
                # to one simulation per (mitigation, workload).
                baselines = {
                    name: run_simulation(
                        (name,), mitigation=mitigation, nrh=_NRH,
                        requests=_REQUESTS, sim_kernel=sim_kernel,
                        cache=cache).mean_ipc
                    for name in _WORKLOADS}
                pacram = pacram_reference_config(vendor, factor)
                ratios = [
                    run_simulation(
                        (name,), mitigation=mitigation, nrh=_NRH,
                        pacram=pacram, requests=_REQUESTS,
                        sim_kernel=sim_kernel,
                        cache=cache).mean_ipc / baselines[name]
                    for name in _WORKLOADS]
                out[(mitigation, vendor, factor)] = \
                    sum(ratios) / len(ratios)
    return out


def _timed_sweep(sim_kernel, make_cache, *, rounds=2):
    best_s = float("inf")
    for _ in range(rounds):
        cache = make_cache()
        started = time.perf_counter()
        sweep = _sweep(sim_kernel, cache=cache)
        best_s = min(best_s, time.perf_counter() - started)
    return sweep, best_s, cache


def _epoch_kernel_margin():
    """Per-mechanism ``service_batch`` vs. ``service_array`` timing.

    This measures the kernels proper: cores and shared queues are built
    outside the timed region and the trace is decoded once, so the
    ratio isolates the per-request drain-loop cost — the thing epoch
    dispatch exists to eliminate.  The two kernels run interleaved
    (best-of-``_EPOCH_ROUNDS`` each) so both see the same cache and
    frequency conditions, and every round's controller stats must match
    the first round's: a fast kernel that changes results is not a fast
    kernel.
    """
    config = SystemConfig(num_cores=1)
    traces = [double_sided_trace(config, hammers=_EPOCH_HAMMERS)]

    def batched_run(name):
        mech = make_mitigation(name, _EPOCH_NRH, batched=True,
                               config=config)
        sys_ = MemorySystem(config, traces, mitigation=mech)
        cores = [BatchCore(core) for core in sys_.cores]
        started = time.perf_counter()
        core_stats = service_batch(sys_, cores)
        elapsed = time.perf_counter() - started
        return elapsed, sys_._collect(core_stats)

    def array_run(name):
        mech = make_mitigation(name, _EPOCH_NRH, batched=True,
                               config=config)
        sys_ = MemorySystem(config, traces, mitigation=mech)
        shared = SharedQueues()
        cores = [ArrayCore(core, shared) for core in sys_.cores]
        started = time.perf_counter()
        core_stats = service_array(sys_, cores, shared)
        elapsed = time.perf_counter() - started
        return elapsed, sys_._collect(core_stats)

    def sweep_once():
        per_mechanism = {}
        # Cyclic-GC passes triggered by the kernels' allocations would
        # rescan the whole live heap inside the timed regions and swamp
        # the (small) denominators.
        gc.collect()
        gc.disable()
        try:
            for name in _EPOCH_MECHANISMS:
                best = {"batched": float("inf"), "array": float("inf")}
                reference = None
                for _ in range(_EPOCH_ROUNDS):
                    for variant, run in (("batched", batched_run),
                                         ("array", array_run)):
                        elapsed, result = run(name)
                        best[variant] = min(best[variant], elapsed)
                        stats = result.controller_stats
                        signature = (stats.reads, stats.activations,
                                     stats.preventive_refresh_rows,
                                     stats.row_hits)
                        if reference is None:
                            reference = signature
                        assert signature == reference, (name, variant,
                                                        signature,
                                                        reference)
                per_mechanism[name] = {
                    "batched_s": best["batched"],
                    "array_s": best["array"],
                    "ratio": best["batched"] / best["array"],
                }
        finally:
            gc.enable()
        aggregate = (sum(per_mechanism[m]["batched_s"]
                         for m in _EPOCH_BATCHABLE)
                     / sum(per_mechanism[m]["array_s"]
                           for m in _EPOCH_BATCHABLE))
        return per_mechanism, aggregate

    # The margin is a property of the code, but each measurement is a
    # property of the machine's moment: on a shared runner, whole-process
    # blips (frequency steps, noisy neighbours) depress every cell of one
    # sweep together, which best-of-rounds inside the sweep cannot undo.
    # Best-of-attempts across sweeps does, with an early exit so the
    # common case pays for one.
    best_sweep, best_aggregate = sweep_once()
    for _ in range(_EPOCH_ATTEMPTS - 1):
        if best_aggregate >= _EPOCH_MARGIN_FLOOR * 1.04:
            break
        per_mechanism, aggregate = sweep_once()
        if aggregate > best_aggregate:
            best_sweep, best_aggregate = per_mechanism, aggregate
    return best_sweep, best_aggregate


def _run_all_phases():
    # Kernel-level sweep first: it times small denominators against a
    # still-small heap, before the workflow phases allocate theirs.
    per_mechanism, epoch_margin = _epoch_kernel_margin()
    before, before_s, _ = _timed_sweep("scalar", lambda: None)
    after, after_s, cache = _timed_sweep("batched", BaselineCache)
    array, array_s, _ = _timed_sweep("array", BaselineCache)
    return (before, before_s, after, after_s, array, array_s, cache,
            per_mechanism, epoch_margin)


def bench_system_scaling(benchmark):
    (before, before_s, after, after_s, array, array_s, cache,
     per_mechanism, epoch_margin) = run_once(benchmark, _run_all_phases)
    # Parity first: a fast path that changes results is not a fast path.
    assert before == after
    assert before == array
    points = len(before)
    sims_before = points * 2 * len(_WORKLOADS)
    speedup = before_s / after_s if after_s > 0 else float("inf")
    array_speedup = before_s / array_s if array_s > 0 else float("inf")
    array_vs_batched = after_s / array_s if array_s > 0 else float("inf")
    epoch_lines = "\n".join(
        f"  {name:9s} batched={row['batched_s'] * 1e3:7.2f}ms "
        f"array={row['array_s'] * 1e3:7.2f}ms ratio={row['ratio']:.2f}x"
        + ("" if name in _EPOCH_BATCHABLE else "  (reported, not asserted)")
        for name, row in per_mechanism.items())
    text = (
        f"sweep: {len(_MITIGATIONS)} mitigations x {len(_VENDORS)} vendors "
        f"x {len(_TRAS_FACTORS)} tRAS factors x {len(_WORKLOADS)} "
        f"workloads ({sims_before} simulations naively)\n"
        f"scalar kernel, no cache:   {before_s:.2f}s\n"
        f"batched kernel + memoized baselines: {after_s:.2f}s\n"
        f"array kernel + memoized baselines:   {array_s:.2f}s\n"
        f"speedup (batched): {speedup:.1f}x\n"
        f"speedup (array):   {array_speedup:.1f}x "
        f"({array_vs_batched:.2f}x over batched)\n"
        f"baseline-cache hits: {cache.hits}  misses: {cache.misses}  "
        f"hit rate: {cache.hit_rate():.2f}\n"
        f"kernel-level epoch-dispatch sweep "
        f"(nrh={_EPOCH_NRH}, {_EPOCH_HAMMERS} hammer pairs):\n"
        f"{epoch_lines}\n"
        f"epoch-dispatch aggregate margin "
        f"({'+'.join(_EPOCH_BATCHABLE)}): {epoch_margin:.2f}x")
    save_result("system_scaling", text)
    payload = {
        "speedup": speedup,
        "array_speedup": array_speedup,
        "array_vs_batched": array_vs_batched,
        "before_s": before_s,
        "after_s": after_s,
        "array_s": array_s,
        "points": points,
        "cache": cache.stats(),
        "series": {f"{m}@{v_}@{f}": v
                   for (m, v_, f), v in after.items()},
        "epoch_kernel_margin": epoch_margin,
        "epoch_kernel_margin_floor": _EPOCH_MARGIN_FLOOR,
        "epoch_kernel_sweep": per_mechanism,
        "epoch_kernel_batchable": list(_EPOCH_BATCHABLE),
        "floors": {"speedup": _BATCHED_FLOOR,
                   "array_speedup": _ARRAY_FLOOR,
                   "epoch_kernel_margin": _EPOCH_MARGIN_FLOOR},
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_system_scaling.json").write_text(
        json.dumps(payload, indent=1, sort_keys=True) + "\n")
    assert speedup >= _BATCHED_FLOOR, f"fast path only {speedup:.1f}x faster"
    assert array_speedup >= _ARRAY_FLOOR, (
        f"array workflow only {array_speedup:.1f}x faster "
        f"(floor {_ARRAY_FLOOR:.0f}x)")
    assert array_s < after_s, (
        f"array phase ({array_s:.2f}s) slower than batched ({after_s:.2f}s)")
    assert epoch_margin >= _EPOCH_MARGIN_FLOOR, (
        f"epoch-dispatch kernel margin only {epoch_margin:.2f}x "
        f"(floor {_EPOCH_MARGIN_FLOOR}x) over {_EPOCH_BATCHABLE}")


def bench_fig_builders_kernel_parity(benchmark):
    """fig17/fig18/fig19 render byte-identically under every kernel."""

    def _render_all(sim_kernel):
        data = fig17_18_performance_energy(
            mitigations=("PARA",), vendors=("H",), nrh_values=(1024, 64),
            workloads=("spec06.mcf",), requests=800, sim_kernel=sim_kernel)
        lines = []
        for figure in ("performance", "energy"):
            for (mitigation, label), series in data[figure].items():
                row = " ".join(f"nrh={n}:{v:.4f}"
                               for n, v in series.items())
                lines.append(f"[{figure} {mitigation} {label}] {row}")
        periodic = fig19_periodic(densities_gbit=(8, 64),
                                  latency_factors=(1.00, 0.36),
                                  requests=800, sim_kernel=sim_kernel)
        for density, per_factor in periodic.items():
            for factor, metrics in per_factor.items():
                lines.append(f"density={density}Gb f={factor}: "
                             f"perf={metrics['performance']:.4f} "
                             f"energy={metrics['energy']:.4f}")
        return "\n".join(lines).encode()

    def _all():
        return (_render_all("scalar"), _render_all("batched"),
                _render_all("array"))

    scalar_bytes, batched_bytes, array_bytes = run_once(benchmark, _all)
    assert scalar_bytes == batched_bytes
    assert scalar_bytes == array_bytes
