"""Scalar vs. batched system-simulation kernel + baseline memoization.

Runs the same fig16-style workload sweep (mitigation x tRAS factor, each
point normalized against its no-PaCRAM baseline) two ways:

* **before** — the scalar per-request oracle, every point recomputing its
  baseline (the pre-fast-path cost model);
* **after** — the batched kernel with a shared
  :class:`~repro.analysis.baselines.BaselineCache`, so the baseline runs
  once per (mitigation, workload) across the whole factor sweep.

Three contracts are asserted, not just reported:

* the two phases produce identical normalized series (the scalar path is
  the parity oracle, and memoized baselines must replay exactly);
* the fig17/fig18 and fig19 builders produce byte-identical rendered
  output under either kernel;
* the fast path is at least 5x faster end-to-end on this sweep.

Results land in ``bench_results/system_scaling.txt`` plus a
machine-readable ``bench_results/BENCH_system_scaling.json``.
"""

import json
import time

from bench_util import RESULTS_DIR, run_once, save_result

from repro.analysis.baselines import BaselineCache
from repro.analysis.figures import fig17_18_performance_energy, fig19_periodic
from repro.analysis.runner import pacram_reference_config, run_simulation

_TRAS_FACTORS = (0.81, 0.64, 0.45, 0.36, 0.27)
_VENDORS = ("H", "S")
_MITIGATIONS = ("PARA", "Graphene")
_WORKLOADS = ("spec06.mcf", "ycsb.a")
_NRH = 64
_REQUESTS = 2_500


def _sweep(sim_kernel, cache):
    """One normalized-IPC sweep: {(mitigation, vendor, factor): ratio}."""
    out = {}
    for mitigation in _MITIGATIONS:
        for vendor in _VENDORS:
            for factor in _TRAS_FACTORS:
                # The naive workflow recomputes this baseline at every
                # (vendor, factor) cell; the cache collapses the repeats
                # to one simulation per (mitigation, workload).
                baselines = {
                    name: run_simulation(
                        (name,), mitigation=mitigation, nrh=_NRH,
                        requests=_REQUESTS, sim_kernel=sim_kernel,
                        cache=cache).mean_ipc
                    for name in _WORKLOADS}
                pacram = pacram_reference_config(vendor, factor)
                ratios = [
                    run_simulation(
                        (name,), mitigation=mitigation, nrh=_NRH,
                        pacram=pacram, requests=_REQUESTS,
                        sim_kernel=sim_kernel,
                        cache=cache).mean_ipc / baselines[name]
                    for name in _WORKLOADS]
                out[(mitigation, vendor, factor)] = \
                    sum(ratios) / len(ratios)
    return out


def _run_both_phases():
    started = time.perf_counter()
    before = _sweep("scalar", cache=None)
    before_s = time.perf_counter() - started
    cache = BaselineCache()
    started = time.perf_counter()
    after = _sweep("batched", cache=cache)
    after_s = time.perf_counter() - started
    return before, before_s, after, after_s, cache


def bench_system_scaling(benchmark):
    before, before_s, after, after_s, cache = run_once(
        benchmark, _run_both_phases)
    # Parity first: a fast path that changes results is not a fast path.
    assert before == after
    points = len(before)
    sims_before = points * 2 * len(_WORKLOADS)
    speedup = before_s / after_s if after_s > 0 else float("inf")
    text = (
        f"sweep: {len(_MITIGATIONS)} mitigations x {len(_VENDORS)} vendors "
        f"x {len(_TRAS_FACTORS)} tRAS factors x {len(_WORKLOADS)} "
        f"workloads ({sims_before} simulations naively)\n"
        f"scalar kernel, no cache:   {before_s:.2f}s\n"
        f"batched kernel + memoized baselines: {after_s:.2f}s\n"
        f"speedup: {speedup:.1f}x\n"
        f"baseline-cache hits: {cache.hits}  misses: {cache.misses}  "
        f"hit rate: {cache.hit_rate():.2f}")
    save_result("system_scaling", text)
    payload = {
        "speedup": speedup,
        "before_s": before_s,
        "after_s": after_s,
        "points": points,
        "cache": cache.stats(),
        "series": {f"{m}@{v_}@{f}": v
                   for (m, v_, f), v in after.items()},
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_system_scaling.json").write_text(
        json.dumps(payload, indent=1, sort_keys=True) + "\n")
    assert speedup >= 5.0, f"fast path only {speedup:.1f}x faster"


def bench_fig_builders_kernel_parity(benchmark):
    """fig17/fig18/fig19 render byte-identically under either kernel."""

    def _render_all(sim_kernel):
        data = fig17_18_performance_energy(
            mitigations=("PARA",), vendors=("H",), nrh_values=(1024, 64),
            workloads=("spec06.mcf",), requests=800, sim_kernel=sim_kernel)
        lines = []
        for figure in ("performance", "energy"):
            for (mitigation, label), series in data[figure].items():
                row = " ".join(f"nrh={n}:{v:.4f}"
                               for n, v in series.items())
                lines.append(f"[{figure} {mitigation} {label}] {row}")
        periodic = fig19_periodic(densities_gbit=(8, 64),
                                  latency_factors=(1.00, 0.36),
                                  requests=800, sim_kernel=sim_kernel)
        for density, per_factor in periodic.items():
            for factor, metrics in per_factor.items():
                lines.append(f"density={density}Gb f={factor}: "
                             f"perf={metrics['performance']:.4f} "
                             f"energy={metrics['energy']:.4f}")
        return "\n".join(lines).encode()

    def _both():
        return _render_all("scalar"), _render_all("batched")

    scalar_bytes, batched_bytes = run_once(benchmark, _both)
    assert scalar_bytes == batched_bytes
