"""Tests for Algorithm 1 (measure_row / perform_rh)."""

import pytest

from repro.characterization.algorithm1 import (
    CharacterizationConfig,
    aggressors_of,
    find_wcdp,
    measure_row,
    perform_rh,
)
from repro.errors import CharacterizationError

FAST = CharacterizationConfig(iterations=1)


class TestAggressorsOf:
    def test_two_neighbors(self, host_s6):
        aggressors = aggressors_of(host_s6, 100)
        assert len(aggressors) == 2
        for row in aggressors:
            assert host_s6.module.mapping.physical_distance(100, row) == 1

    def test_edge_row_rejected(self, host_h5):
        with pytest.raises(CharacterizationError):
            aggressors_of(host_h5, 0)


class TestPerformRH:
    def test_zero_hammers_no_flips_at_nominal(self, host_s6):
        from repro.dram.disturbance import DataPattern
        flips = perform_rh(host_s6, 0, 100, DataPattern.ROW_STRIPE,
                           0, 33.0, 1)
        assert flips == 0

    def test_max_hammers_flip(self, host_s6):
        from repro.dram.disturbance import DataPattern
        flips = perform_rh(host_s6, 0, 100, DataPattern.ROW_STRIPE,
                           100_000, 33.0, 1)
        assert flips > 0

    def test_deterministic(self, host_s6):
        from repro.dram.disturbance import DataPattern
        a = perform_rh(host_s6, 0, 100, DataPattern.ROW_STRIPE,
                       60_000, 33.0, 1)
        b = perform_rh(host_s6, 0, 100, DataPattern.ROW_STRIPE,
                       60_000, 33.0, 1)
        assert a == b


class TestFindWCDP:
    def test_matches_device_worst_case(self, host_s6):
        victim = 150
        found = find_wcdp(host_s6, 0, victim, 33.0, 1, FAST)
        expected = host_s6.module.row_population(0, victim).worst_case_pattern()
        assert found is expected


class TestMeasureRow:
    def test_nominal_measurement(self, host_s6):
        result = measure_row(host_s6, 0, 120, config=FAST)
        population = host_s6.module.row_population(0, 120)
        true_nrh = population.effective_nrh()
        assert result.nrh is not None
        assert abs(result.nrh - true_nrh) <= 1_100  # bisection resolution
        assert result.ber > 0
        assert result.tras_factor == pytest.approx(1.0)

    def test_reduced_latency_lowers_nrh_for_s(self, host_s6):
        nominal = measure_row(host_s6, 0, 130, config=FAST)
        reduced = measure_row(host_s6, 0, 130, tras_red_ns=33.0 * 0.27,
                              config=FAST)
        assert nominal.nrh is not None and reduced.nrh is not None
        assert reduced.nrh < nominal.nrh

    def test_retention_failure_reports_zero(self, host_s6):
        # Find a row that fails retention at 0.18 tRAS (weak tail).
        found_zero = False
        for victim in range(100, 200):
            result = measure_row(host_s6, 0, victim,
                                 tras_red_ns=33.0 * 0.18, config=FAST)
            if result.nrh == 0:
                found_zero = True
                break
        assert found_zero

    def test_invalid_latency_rejected(self, host_s6):
        with pytest.raises(CharacterizationError):
            measure_row(host_s6, 0, 100, tras_red_ns=50.0, config=FAST)
        with pytest.raises(CharacterizationError):
            measure_row(host_s6, 0, 100, tras_red_ns=0.0, config=FAST)

    def test_invalid_npr_rejected(self, host_s6):
        with pytest.raises(CharacterizationError):
            measure_row(host_s6, 0, 100, n_pr=0, config=FAST)

    def test_iterations_preserve_min_discipline(self, host_s6):
        multi = measure_row(host_s6, 0, 140,
                            config=CharacterizationConfig(iterations=3))
        single = measure_row(host_s6, 0, 140, config=FAST)
        assert multi.nrh == single.nrh  # deterministic device
        assert multi.ber == single.ber


class TestConfigValidation:
    def test_iterations_positive(self):
        with pytest.raises(CharacterizationError):
            CharacterizationConfig(iterations=0)

    def test_patterns_nonempty(self):
        with pytest.raises(CharacterizationError):
            CharacterizationConfig(patterns=())
