"""Tests for the PID temperature controller."""

import pytest

from repro.bender.temperature import PIDTemperatureController, ThermalPlant
from repro.errors import ConfigError


class TestThermalPlant:
    def test_heats_toward_target(self):
        plant = ThermalPlant()
        before = plant.temperature_c
        plant.step(heater_watts=100.0, dt_s=5.0)
        assert plant.temperature_c > before

    def test_cools_to_ambient_without_power(self):
        plant = ThermalPlant(temperature_c=90.0, ambient_c=25.0)
        for _ in range(200):
            plant.step(heater_watts=0.0, dt_s=5.0)
        assert plant.temperature_c == pytest.approx(25.0, abs=0.5)

    def test_steady_state_is_resistance_times_power(self):
        plant = ThermalPlant(ambient_c=25.0, thermal_resistance=0.9)
        for _ in range(500):
            plant.step(heater_watts=50.0, dt_s=5.0)
        assert plant.temperature_c == pytest.approx(25.0 + 45.0, abs=0.5)

    def test_invalid_step_rejected(self):
        with pytest.raises(ConfigError):
            ThermalPlant().step(10.0, dt_s=0.0)


class TestPIDController:
    @pytest.mark.parametrize("target", [50.0, 65.0, 80.0])
    def test_settles_within_half_degree(self, target):
        # The paper's three test temperatures, regulated within +/- 0.5 C.
        controller = PIDTemperatureController(setpoint_c=target)
        settled = controller.settle()
        assert abs(settled - target) <= controller.PRECISION_C

    def test_retarget(self):
        controller = PIDTemperatureController(setpoint_c=50.0)
        controller.settle()
        controller.set_target(80.0)
        settled = controller.settle()
        assert abs(settled - 80.0) <= 0.5

    def test_stays_in_band_over_time(self):
        # Footnote 2: variation < 0.5 C over a long run.
        controller = PIDTemperatureController(setpoint_c=80.0)
        controller.settle()
        temperatures = [controller.step() for _ in range(600)]
        assert max(temperatures) - min(temperatures) < 1.0
        assert all(abs(t - 80.0) <= 0.75 for t in temperatures)

    def test_unreachable_setpoint_raises(self):
        controller = PIDTemperatureController(setpoint_c=200.0,
                                              max_power_w=50.0)
        with pytest.raises(ConfigError, match="failed to settle"):
            controller.settle(timeout_s=300.0)

    def test_invalid_setpoint_rejected(self):
        with pytest.raises(ConfigError):
            PIDTemperatureController(setpoint_c=-10.0)
        controller = PIDTemperatureController()
        with pytest.raises(ConfigError):
            controller.set_target(0.0)


class TestHostIntegration:
    def test_host_sets_module_temperature(self):
        from repro.bender.host import DRAMBenderHost
        host = DRAMBenderHost("S6", temperature_c=65.0)
        assert abs(host.module.temperature_c - 65.0) <= 0.5

    def test_host_new_program_uses_device_timing(self):
        from repro.bender.host import DRAMBenderHost
        host = DRAMBenderHost("S6")
        assert host.new_program().timing is host.module.timing
