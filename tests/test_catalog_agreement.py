"""Calibration-closure tests: the pipeline re-measures the catalog.

For a cross-vendor sample of modules, running Algorithm 1 against the
device model must recover each module's published Table-3 normalized-N_RH
curve.  This is the central validity argument of the reproduction (see
DESIGN.md): the methodology is the paper's, the chips are calibrated
stand-ins, and the two must close the loop.
"""

import pytest

from repro.characterization.sweeps import characterize_module
from repro.dram.catalog import module_spec

#: (module, factors to check): two modules per vendor, spanning weak/strong.
SAMPLE = (
    ("H3", (0.64, 0.27)),
    ("H8", (0.64, 0.27)),
    ("M0", (0.64, 0.18)),
    ("M5", (0.64, 0.18)),
    ("S1", (0.64, 0.27)),
    ("S10", (0.64, 0.27)),
)


@pytest.mark.parametrize("module_id,factors", SAMPLE)
def test_measured_ratio_tracks_table3(module_id, factors):
    result = characterize_module(module_id, tras_factors=factors,
                                 per_region=8)
    spec = module_spec(module_id)
    nominal = result.lowest_nrh(1.00)
    assert nominal is not None and nominal > 0
    # The absolute minimum over a 24-row sample sits above the full-bank
    # minimum but within the row-distribution's head.
    assert nominal == pytest.approx(spec.nominal_nrh, rel=0.35)
    for factor in factors:
        published = spec.nrh_ratio(factor)
        measured = result.lowest_nrh(factor)
        if published == 0.0:
            assert measured == 0, (module_id, factor)
        else:
            # abs=0.18: with 24-row samples the sample minimum sits above
            # the true bank minimum, inflating apparent ratios slightly
            # (bench_table3 checks the reference modules at 0.15).
            ratio = measured / nominal
            assert ratio == pytest.approx(published, abs=0.18), \
                (module_id, factor)


def test_invulnerable_module_stays_clean_everywhere():
    result = characterize_module("H0", tras_factors=(0.64, 0.18),
                                 per_region=6)
    for factor in (1.00, 0.64, 0.18):
        assert result.lowest_nrh(factor) is None
