"""Tests for the fault-tolerant parallel execution engine."""

import json
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, ExecutionError
from repro.runtime import (
    CORRUPT_SUFFIX,
    ProgressReporter,
    Task,
    TaskPool,
    discard_stale_tmp,
    quarantine,
    write_atomic,
)


# ----------------------------------------------------------------------
# Worker functions must be module-level so they pickle across processes.
# ----------------------------------------------------------------------
def _write_square(n: int, path: str) -> None:
    write_atomic(path, json.dumps({"n": n, "square": n * n}))


def _load_square(path: Path) -> int:
    return json.loads(Path(path).read_text())["square"]


def _flaky_square(counter_path: str, fail_times: int, n: int,
                  path: str) -> None:
    """Fails the first ``fail_times`` invocations, then succeeds."""
    counter = Path(counter_path)
    calls = int(counter.read_text()) if counter.exists() else 0
    counter.write_text(str(calls + 1))
    if calls < fail_times:
        raise RuntimeError(f"transient failure #{calls}")
    _write_square(n, path)


def _always_fail(path: str) -> None:
    raise RuntimeError("permanent failure")


def _square_task(tmp_path: Path, n: int) -> Task:
    path = tmp_path / f"sq{n}.json"
    return Task(key=f"sq{n}", path=path, fn=_write_square,
                args=(n, str(path)))


class TestPersist:
    def test_write_atomic_roundtrip(self, tmp_path):
        path = tmp_path / "deep" / "result.json"
        write_atomic(path, "payload")
        assert path.read_text() == "payload"
        assert list(path.parent.glob("*.tmp")) == []

    def test_write_atomic_overwrites(self, tmp_path):
        path = tmp_path / "r.json"
        write_atomic(path, "old")
        write_atomic(path, "new")
        assert path.read_text() == "new"

    def test_quarantine_unique_names(self, tmp_path):
        path = tmp_path / "r.json"
        moved = []
        for generation in range(3):
            path.write_text(f"garbage {generation}")
            moved.append(quarantine(path))
        assert not path.exists()
        assert len({m.name for m in moved}) == 3
        assert all(CORRUPT_SUFFIX in m.name for m in moved)
        assert moved[0].read_text() == "garbage 0"

    def test_discard_stale_tmp(self, tmp_path):
        (tmp_path / "a.json.123.tmp").write_text("x")
        (tmp_path / "b.json").write_text("keep")
        assert discard_stale_tmp(tmp_path) == 1
        assert (tmp_path / "b.json").exists()
        assert discard_stale_tmp(tmp_path / "missing") == 0


class TestTaskPool:
    def test_runs_and_returns_in_task_order(self, tmp_path):
        tasks = [_square_task(tmp_path, n) for n in (3, 1, 2)]
        results = TaskPool(jobs=1).run(tasks, loader=_load_square)
        assert list(results) == ["sq3", "sq1", "sq2"]
        assert results["sq3"] == 9

    def test_resume_reuses_valid_results(self, tmp_path):
        task = _square_task(tmp_path, 4)
        pool = TaskPool(jobs=1)
        pool.run([task], loader=_load_square)
        stamp = task.path.stat().st_mtime_ns
        again = pool.run([task], loader=_load_square)
        assert again["sq4"] == 16
        assert task.path.stat().st_mtime_ns == stamp  # not recomputed
        assert pool.last_report.reused == ["sq4"]

    def test_force_recomputes(self, tmp_path):
        task = _square_task(tmp_path, 4)
        pool = TaskPool(jobs=1)
        pool.run([task], loader=_load_square)
        pool.run([task], loader=_load_square, force=True)
        assert pool.last_report.computed == ["sq4"]

    def test_corrupt_result_quarantined_and_rerun(self, tmp_path):
        task = _square_task(tmp_path, 5)
        task.path.write_text('{"n": 5, "squ')  # truncated mid-write
        pool = TaskPool(jobs=1, ledger_path=tmp_path / "errors.jsonl")
        results = pool.run([task], loader=_load_square)
        assert results["sq5"] == 25
        assert json.loads(task.path.read_text())["square"] == 25
        corrupt = list(tmp_path.glob(f"*{CORRUPT_SUFFIX}*"))
        assert len(corrupt) == 1
        assert pool.last_report.quarantined == ["sq5"]
        ledger = [json.loads(line) for line in
                  (tmp_path / "errors.jsonl").read_text().splitlines()]
        assert ledger[0]["action"] == "quarantine"

    def test_transient_failure_retried_with_backoff(self, tmp_path):
        path = tmp_path / "r.json"
        task = Task(key="flaky", path=path, fn=_flaky_square,
                    args=(str(tmp_path / "calls"), 2, 6, str(path)))
        sleeps = []
        pool = TaskPool(jobs=1, max_attempts=3, backoff_s=0.5,
                        ledger_path=tmp_path / "errors.jsonl",
                        sleep=sleeps.append)
        results = pool.run([task], loader=_load_square)
        assert results["flaky"] == 36
        assert sleeps == [0.5, 1.0]  # exponential backoff
        ledger = [json.loads(line) for line in
                  (tmp_path / "errors.jsonl").read_text().splitlines()]
        assert [r["attempt"] for r in ledger] == [1, 2]
        assert all(r["action"] == "attempt" for r in ledger)

    def test_permanent_failure_does_not_kill_other_points(self, tmp_path):
        bad_path = tmp_path / "bad.json"
        tasks = [_square_task(tmp_path, 7),
                 Task(key="bad", path=bad_path, fn=_always_fail,
                      args=(str(bad_path),)),
                 _square_task(tmp_path, 8)]
        pool = TaskPool(jobs=1, max_attempts=2, backoff_s=0, sleep=lambda s: None,
                        ledger_path=tmp_path / "errors.jsonl")
        with pytest.raises(ExecutionError, match="1/3 points failed"):
            pool.run(tasks, loader=_load_square)
        # The good points were still computed and persisted...
        assert _load_square(tmp_path / "sq7.json") == 49
        assert _load_square(tmp_path / "sq8.json") == 64
        # ...and the ledger has the full failure history.
        ledger = [json.loads(line) for line in
                  (tmp_path / "errors.jsonl").read_text().splitlines()]
        assert [r["action"] for r in ledger] == \
            ["attempt", "attempt", "abandoned"]
        # A follow-up run reuses the good rows and only re-attempts "bad".
        with pytest.raises(ExecutionError):
            pool.run(tasks, loader=_load_square)
        assert pool.last_report.reused == ["sq7", "sq8"]

    def test_parallel_jobs_use_processes(self, tmp_path):
        tasks = [_square_task(tmp_path, n) for n in range(6)]
        results = TaskPool(jobs=2).run(tasks, loader=_load_square)
        assert [results[f"sq{n}"] for n in range(6)] == \
            [n * n for n in range(6)]

    def test_progress_failure_does_not_quarantine_good_results(self, tmp_path):
        # A progress reporter blowing up (e.g. BrokenPipeError when stdout
        # is piped into `head`) must not be misattributed as a result-load
        # failure: the computed row stays on disk, un-quarantined.
        class ExplodingProgress(ProgressReporter):
            def task_done(self, key):
                raise BrokenPipeError("stdout closed")

        task = _square_task(tmp_path, 9)
        with pytest.raises(BrokenPipeError):
            TaskPool(jobs=1, progress=ExplodingProgress()).run(
                [task], loader=_load_square)
        assert task.path.exists()
        assert list(tmp_path.glob(f"*{CORRUPT_SUFFIX}*")) == []
        results = TaskPool(jobs=1).run([task], loader=_load_square)
        assert results["sq9"] == 81

    def test_print_progress_survives_closed_stream(self, tmp_path):
        import io

        class ClosedStream(io.StringIO):
            def write(self, text):
                raise BrokenPipeError("closed")

        from repro.runtime import PrintProgress
        progress = PrintProgress(stream=ClosedStream())
        task = _square_task(tmp_path, 10)
        results = TaskPool(jobs=1, progress=progress).run(
            [task], loader=_load_square)
        assert results["sq10"] == 100  # run completed despite dead stdout

    def test_duplicate_keys_rejected(self, tmp_path):
        task = _square_task(tmp_path, 1)
        with pytest.raises(ConfigError, match="unique"):
            TaskPool(jobs=1).run([task, task], loader=_load_square)

    def test_invalid_pool_config_rejected(self):
        with pytest.raises(ConfigError):
            TaskPool(jobs=0)
        with pytest.raises(ConfigError):
            TaskPool(max_attempts=0)

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(values=st.lists(st.integers(min_value=0, max_value=999),
                           min_size=1, max_size=8, unique=True))
    def test_parallel_output_equals_serial_output(self, tmp_path, values):
        """Property: jobs>1 produces byte-identical results to jobs=1."""
        serial_dir = tmp_path / f"serial-{len(list(tmp_path.iterdir()))}"
        parallel_dir = serial_dir.with_name(serial_dir.name + "-par")
        outputs = {}
        for jobs, out_dir in ((1, serial_dir), (2, parallel_dir)):
            out_dir.mkdir()
            tasks = [_square_task(out_dir, n) for n in values]
            results = TaskPool(jobs=jobs).run(tasks, loader=_load_square)
            outputs[jobs] = (results,
                             {t.path.name: t.path.read_bytes() for t in tasks})
        assert outputs[1] == outputs[2]


class TestLedgerCapAndTiming:
    def test_records_carry_attempt_and_monotonic_elapsed(self, tmp_path):
        path = tmp_path / "r.json"
        task = Task(key="flaky", path=path, fn=_flaky_square,
                    args=(str(tmp_path / "calls"), 2, 6, str(path)))
        pool = TaskPool(jobs=1, max_attempts=3, backoff_s=0,
                        ledger_path=tmp_path / "errors.jsonl",
                        sleep=lambda s: None)
        pool.run([task], loader=_load_square)
        ledger = [json.loads(line) for line in
                  (tmp_path / "errors.jsonl").read_text().splitlines()]
        assert [r["attempt"] for r in ledger] == [1, 2]
        elapsed = [r["elapsed_s"] for r in ledger]
        assert all(e >= 0 for e in elapsed)
        assert elapsed == sorted(elapsed)  # monotonic within the run

    def test_ledger_rotates_oldest_first(self, tmp_path):
        ledger_path = tmp_path / "errors.jsonl"
        bad_path = tmp_path / "bad.json"
        task = Task(key="bad", path=bad_path, fn=_always_fail,
                    args=(str(bad_path),))
        pool = TaskPool(jobs=1, max_attempts=8, backoff_s=0,
                        sleep=lambda s: None, ledger_path=ledger_path,
                        ledger_max_bytes=400)
        with pytest.raises(ExecutionError):
            pool.run([task], loader=_load_square)
        assert ledger_path.stat().st_size <= 400
        ledger = [json.loads(line) for line in
                  ledger_path.read_text().splitlines()]
        # The newest records survive; the oldest attempts were evicted.
        assert ledger
        assert ledger[-1]["action"] == "abandoned"
        assert ledger[0]["attempt"] > 1
        assert len(ledger) < 9  # 8 attempts + abandoned were written

    def test_oversized_single_record_kept(self, tmp_path):
        ledger_path = tmp_path / "errors.jsonl"
        pool = TaskPool(jobs=1, ledger_path=ledger_path, ledger_max_bytes=10)
        pool._record("key", 1, "x" * 100, action="attempt")
        ledger = [json.loads(line) for line in
                  ledger_path.read_text().splitlines()]
        assert len(ledger) == 1  # never trimmed to an empty ledger

    def test_invalid_cap_rejected(self):
        with pytest.raises(ConfigError):
            TaskPool(ledger_max_bytes=0)
