"""Tests for the fault-tolerant parallel execution engine."""

import json
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, ExecutionError
from repro.runtime import (
    CORRUPT_SUFFIX,
    ProgressReporter,
    Task,
    TaskPool,
    describe_run_report,
    discard_stale_tmp,
    quarantine,
    write_atomic,
)


# ----------------------------------------------------------------------
# Worker functions must be module-level so they pickle across processes.
# ----------------------------------------------------------------------
def _write_square(n: int, path: str) -> None:
    write_atomic(path, json.dumps({"n": n, "square": n * n}))


def _load_square(path: Path) -> int:
    return json.loads(Path(path).read_text())["square"]


def _flaky_square(counter_path: str, fail_times: int, n: int,
                  path: str) -> None:
    """Fails the first ``fail_times`` invocations, then succeeds."""
    counter = Path(counter_path)
    calls = int(counter.read_text()) if counter.exists() else 0
    counter.write_text(str(calls + 1))
    if calls < fail_times:
        raise RuntimeError(f"transient failure #{calls}")
    _write_square(n, path)


def _always_fail(path: str) -> None:
    raise RuntimeError("permanent failure")


def _square_task(tmp_path: Path, n: int) -> Task:
    path = tmp_path / f"sq{n}.json"
    return Task(key=f"sq{n}", path=path, fn=_write_square,
                args=(n, str(path)))


class TestPersist:
    def test_write_atomic_roundtrip(self, tmp_path):
        path = tmp_path / "deep" / "result.json"
        write_atomic(path, "payload")
        assert path.read_text() == "payload"
        assert list(path.parent.glob("*.tmp")) == []

    def test_write_atomic_overwrites(self, tmp_path):
        path = tmp_path / "r.json"
        write_atomic(path, "old")
        write_atomic(path, "new")
        assert path.read_text() == "new"

    def test_quarantine_unique_names(self, tmp_path):
        path = tmp_path / "r.json"
        moved = []
        for generation in range(3):
            path.write_text(f"garbage {generation}")
            moved.append(quarantine(path))
        assert not path.exists()
        assert len({m.name for m in moved}) == 3
        assert all(CORRUPT_SUFFIX in m.name for m in moved)
        assert moved[0].read_text() == "garbage 0"

    def test_discard_stale_tmp(self, tmp_path):
        (tmp_path / "a.json.123.tmp").write_text("x")
        (tmp_path / "b.json").write_text("keep")
        assert discard_stale_tmp(tmp_path) == 1
        assert (tmp_path / "b.json").exists()
        assert discard_stale_tmp(tmp_path / "missing") == 0


class TestTaskPool:
    def test_runs_and_returns_in_task_order(self, tmp_path):
        tasks = [_square_task(tmp_path, n) for n in (3, 1, 2)]
        results = TaskPool(jobs=1).run(tasks, loader=_load_square)
        assert list(results) == ["sq3", "sq1", "sq2"]
        assert results["sq3"] == 9

    def test_resume_reuses_valid_results(self, tmp_path):
        task = _square_task(tmp_path, 4)
        pool = TaskPool(jobs=1)
        pool.run([task], loader=_load_square)
        stamp = task.path.stat().st_mtime_ns
        again = pool.run([task], loader=_load_square)
        assert again["sq4"] == 16
        assert task.path.stat().st_mtime_ns == stamp  # not recomputed
        assert pool.last_report.reused == ["sq4"]

    def test_force_recomputes(self, tmp_path):
        task = _square_task(tmp_path, 4)
        pool = TaskPool(jobs=1)
        pool.run([task], loader=_load_square)
        pool.run([task], loader=_load_square, force=True)
        assert pool.last_report.computed == ["sq4"]

    def test_corrupt_result_quarantined_and_rerun(self, tmp_path):
        task = _square_task(tmp_path, 5)
        task.path.write_text('{"n": 5, "squ')  # truncated mid-write
        pool = TaskPool(jobs=1, ledger_path=tmp_path / "errors.jsonl")
        results = pool.run([task], loader=_load_square)
        assert results["sq5"] == 25
        assert json.loads(task.path.read_text())["square"] == 25
        corrupt = list(tmp_path.glob(f"*{CORRUPT_SUFFIX}*"))
        assert len(corrupt) == 1
        assert pool.last_report.quarantined == ["sq5"]
        ledger = [json.loads(line) for line in
                  (tmp_path / "errors.jsonl").read_text().splitlines()]
        assert ledger[0]["action"] == "quarantine"

    def test_transient_failure_retried_with_backoff(self, tmp_path):
        path = tmp_path / "r.json"
        task = Task(key="flaky", path=path, fn=_flaky_square,
                    args=(str(tmp_path / "calls"), 2, 6, str(path)))
        sleeps = []
        pool = TaskPool(jobs=1, max_attempts=3, backoff_s=0.5,
                        backoff_jitter=0, clock=lambda: 0.0,
                        ledger_path=tmp_path / "errors.jsonl",
                        sleep=sleeps.append)
        results = pool.run([task], loader=_load_square)
        assert results["flaky"] == 36
        assert sleeps == [0.5, 1.0]  # exponential backoff, jitter disabled
        ledger = [json.loads(line) for line in
                  (tmp_path / "errors.jsonl").read_text().splitlines()]
        assert [r["attempt"] for r in ledger] == [1, 2]
        assert all(r["action"] == "attempt" for r in ledger)

    def test_permanent_failure_does_not_kill_other_points(self, tmp_path):
        bad_path = tmp_path / "bad.json"
        tasks = [_square_task(tmp_path, 7),
                 Task(key="bad", path=bad_path, fn=_always_fail,
                      args=(str(bad_path),)),
                 _square_task(tmp_path, 8)]
        pool = TaskPool(jobs=1, max_attempts=2, backoff_s=0, sleep=lambda s: None,
                        ledger_path=tmp_path / "errors.jsonl")
        with pytest.raises(ExecutionError, match="1/3 points failed"):
            pool.run(tasks, loader=_load_square)
        # The good points were still computed and persisted...
        assert _load_square(tmp_path / "sq7.json") == 49
        assert _load_square(tmp_path / "sq8.json") == 64
        # ...and the ledger has the full failure history.
        ledger = [json.loads(line) for line in
                  (tmp_path / "errors.jsonl").read_text().splitlines()]
        assert [r["action"] for r in ledger] == \
            ["attempt", "attempt", "abandoned"]
        # A follow-up run reuses the good rows and only re-attempts "bad".
        with pytest.raises(ExecutionError):
            pool.run(tasks, loader=_load_square)
        assert pool.last_report.reused == ["sq7", "sq8"]

    def test_parallel_jobs_use_processes(self, tmp_path):
        tasks = [_square_task(tmp_path, n) for n in range(6)]
        results = TaskPool(jobs=2).run(tasks, loader=_load_square)
        assert [results[f"sq{n}"] for n in range(6)] == \
            [n * n for n in range(6)]

    def test_progress_failure_does_not_quarantine_good_results(self, tmp_path):
        # A progress reporter blowing up (e.g. BrokenPipeError when stdout
        # is piped into `head`) must not be misattributed as a result-load
        # failure: the computed row stays on disk, un-quarantined.
        class ExplodingProgress(ProgressReporter):
            def task_done(self, key):
                raise BrokenPipeError("stdout closed")

        task = _square_task(tmp_path, 9)
        with pytest.raises(BrokenPipeError):
            TaskPool(jobs=1, progress=ExplodingProgress()).run(
                [task], loader=_load_square)
        assert task.path.exists()
        assert list(tmp_path.glob(f"*{CORRUPT_SUFFIX}*")) == []
        results = TaskPool(jobs=1).run([task], loader=_load_square)
        assert results["sq9"] == 81

    def test_print_progress_survives_closed_stream(self, tmp_path):
        import io

        class ClosedStream(io.StringIO):
            def write(self, text):
                raise BrokenPipeError("closed")

        from repro.runtime import PrintProgress
        progress = PrintProgress(stream=ClosedStream())
        task = _square_task(tmp_path, 10)
        results = TaskPool(jobs=1, progress=progress).run(
            [task], loader=_load_square)
        assert results["sq10"] == 100  # run completed despite dead stdout

    def test_duplicate_keys_rejected(self, tmp_path):
        task = _square_task(tmp_path, 1)
        with pytest.raises(ConfigError, match="unique"):
            TaskPool(jobs=1).run([task, task], loader=_load_square)

    def test_invalid_pool_config_rejected(self):
        with pytest.raises(ConfigError):
            TaskPool(jobs=0)
        with pytest.raises(ConfigError):
            TaskPool(max_attempts=0)

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(values=st.lists(st.integers(min_value=0, max_value=999),
                           min_size=1, max_size=8, unique=True))
    def test_parallel_output_equals_serial_output(self, tmp_path, values):
        """Property: jobs>1 produces byte-identical results to jobs=1."""
        serial_dir = tmp_path / f"serial-{len(list(tmp_path.iterdir()))}"
        parallel_dir = serial_dir.with_name(serial_dir.name + "-par")
        outputs = {}
        for jobs, out_dir in ((1, serial_dir), (2, parallel_dir)):
            out_dir.mkdir()
            tasks = [_square_task(out_dir, n) for n in values]
            results = TaskPool(jobs=jobs).run(tasks, loader=_load_square)
            outputs[jobs] = (results,
                             {t.path.name: t.path.read_bytes() for t in tasks})
        assert outputs[1] == outputs[2]


class TestLedgerCapAndTiming:
    def test_records_carry_attempt_and_monotonic_elapsed(self, tmp_path):
        path = tmp_path / "r.json"
        task = Task(key="flaky", path=path, fn=_flaky_square,
                    args=(str(tmp_path / "calls"), 2, 6, str(path)))
        pool = TaskPool(jobs=1, max_attempts=3, backoff_s=0,
                        ledger_path=tmp_path / "errors.jsonl",
                        sleep=lambda s: None)
        pool.run([task], loader=_load_square)
        ledger = [json.loads(line) for line in
                  (tmp_path / "errors.jsonl").read_text().splitlines()]
        assert [r["attempt"] for r in ledger] == [1, 2]
        elapsed = [r["elapsed_s"] for r in ledger]
        assert all(e >= 0 for e in elapsed)
        assert elapsed == sorted(elapsed)  # monotonic within the run

    def test_ledger_rotates_oldest_first(self, tmp_path):
        ledger_path = tmp_path / "errors.jsonl"
        bad_path = tmp_path / "bad.json"
        task = Task(key="bad", path=bad_path, fn=_always_fail,
                    args=(str(bad_path),))
        pool = TaskPool(jobs=1, max_attempts=8, backoff_s=0,
                        sleep=lambda s: None, ledger_path=ledger_path,
                        ledger_max_bytes=400)
        with pytest.raises(ExecutionError):
            pool.run([task], loader=_load_square)
        assert ledger_path.stat().st_size <= 400
        ledger = [json.loads(line) for line in
                  ledger_path.read_text().splitlines()]
        # The newest records survive; the oldest attempts were evicted.
        assert ledger
        assert ledger[-1]["action"] == "abandoned"
        assert ledger[0]["attempt"] > 1
        assert len(ledger) < 9  # 8 attempts + abandoned were written

    def test_oversized_single_record_kept(self, tmp_path):
        ledger_path = tmp_path / "errors.jsonl"
        pool = TaskPool(jobs=1, ledger_path=ledger_path, ledger_max_bytes=10)
        pool._record("key", 1, "x" * 100, action="attempt")
        ledger = [json.loads(line) for line in
                  ledger_path.read_text().splitlines()]
        assert len(ledger) == 1  # never trimmed to an empty ledger

    def test_invalid_cap_rejected(self):
        with pytest.raises(ConfigError):
            TaskPool(ledger_max_bytes=0)


# ----------------------------------------------------------------------
# Hardened-runtime workers (module-level: they cross the pool boundary).
# ----------------------------------------------------------------------
def _sigkill_once_then_square(marker: str, n: int, path: str) -> None:
    import os
    import signal
    if not Path(marker).exists():
        Path(marker).write_text("died")
        os.kill(os.getpid(), signal.SIGKILL)
    _write_square(n, path)


def _sigkill_always(n: int, path: str) -> None:
    import os
    import signal
    os.kill(os.getpid(), signal.SIGKILL)


def _hang_once_then_square(marker: str, n: int, path: str) -> None:
    import time
    if not Path(marker).exists():
        Path(marker).write_text("hung")
        time.sleep(60.0)
    _write_square(n, path)


def _config_error_worker(path: str) -> None:
    raise ConfigError("deterministic bad config")


def _enospc_once_then_square(marker: str, n: int, path: str) -> None:
    import errno
    if not Path(marker).exists():
        Path(marker).write_text("full")
        raise OSError(errno.ENOSPC, "No space left on device", path)
    _write_square(n, path)


def _kernel_sensitive_square(mode: str, n: int, path: str) -> None:
    """Fails on the "fast" args, succeeds on the "oracle" fallback args."""
    if mode == "fast":
        raise RuntimeError("injected fast-kernel fault")
    _write_square(n, path)


class TestBrokenPoolRecovery:
    def test_sigkilled_worker_does_not_fail_survivors(self, tmp_path):
        """A worker SIGKILLed mid-task (OOM-killer style) breaks the whole
        ProcessPoolExecutor; the engine must rebuild it and complete every
        point, charging no innocent task an attempt."""
        tasks = [_square_task(tmp_path, n) for n in range(4)]
        marker = str(tmp_path / "killed.marker")
        from dataclasses import replace
        tasks[1] = replace(tasks[1], fn=_sigkill_once_then_square,
                           args=(marker,) + tasks[1].args)
        pool = TaskPool(jobs=2, backoff_s=0.01,
                        ledger_path=tmp_path / "errors.jsonl")
        results = pool.run(tasks, loader=_load_square)
        assert [results[f"sq{n}"] for n in range(4)] == [0, 1, 4, 9]
        assert pool.last_report.pool_rebuilds >= 1
        assert pool.last_report.failed == {}

    def test_poison_task_fails_alone_with_infrastructure_class(self, tmp_path):
        """A task that kills its worker on *every* attempt must end up
        isolated and abandoned — without taking any other point with it."""
        tasks = [_square_task(tmp_path, n) for n in range(3)]
        bad_path = tmp_path / "poison.json"
        tasks.append(Task(key="poison", path=bad_path, fn=_sigkill_always,
                          args=(0, str(bad_path))))
        pool = TaskPool(jobs=2, max_attempts=2, max_pool_rebuilds=2,
                        backoff_s=0.01,
                        ledger_path=tmp_path / "errors.jsonl")
        with pytest.raises(ExecutionError, match=r"poison \[infrastructure\]"):
            pool.run(tasks, loader=_load_square)
        report = pool.last_report
        assert set(report.failed) == {"poison"}
        assert report.failure_classes["poison"] == "infrastructure"
        assert report.final_mode == "isolated"
        for n in range(3):
            assert _load_square(tmp_path / f"sq{n}.json") == n * n


class TestWatchdog:
    def test_hung_worker_killed_at_deadline_and_retried(self, tmp_path):
        import time
        tasks = [_square_task(tmp_path, n) for n in range(3)]
        marker = str(tmp_path / "hung.marker")
        from dataclasses import replace
        tasks[0] = replace(tasks[0], fn=_hang_once_then_square,
                           args=(marker,) + tasks[0].args)
        pool = TaskPool(jobs=2, timeout_s=0.5, backoff_s=0.01,
                        ledger_path=tmp_path / "errors.jsonl")
        started = time.monotonic()
        results = pool.run(tasks, loader=_load_square)
        assert time.monotonic() - started < 30.0  # never waited out the hang
        assert [results[f"sq{n}"] for n in range(3)] == [0, 1, 4]
        report = pool.last_report
        assert report.watchdog_kills >= 1
        assert "sq0" in report.timeouts
        ledger = [json.loads(line) for line in
                  (tmp_path / "errors.jsonl").read_text().splitlines()]
        timeout_records = [r for r in ledger if r["action"] == "timeout"]
        assert timeout_records
        assert all(r["class"] == "timeout" for r in timeout_records)

    def test_per_task_timeout_overrides_pool_timeout(self, tmp_path):
        from dataclasses import replace
        marker = str(tmp_path / "hung.marker")
        task = _square_task(tmp_path, 5)
        task = replace(task, fn=_hang_once_then_square,
                       args=(marker,) + task.args, timeout_s=0.5)
        # Pool-wide deadline is generous; the task's own is what fires.
        pool = TaskPool(jobs=2, timeout_s=300.0, backoff_s=0.01)
        results = pool.run([task, _square_task(tmp_path, 6)],
                           loader=_load_square)
        assert results["sq5"] == 25
        assert pool.last_report.timeouts == ["sq5"]


class TestFailureClassification:
    def test_config_error_fails_immediately_without_retries(self, tmp_path):
        bad_path = tmp_path / "bad.json"
        tasks = [Task(key="bad", path=bad_path, fn=_config_error_worker,
                      args=(str(bad_path),)),
                 _square_task(tmp_path, 3)]
        pool = TaskPool(jobs=1, max_attempts=5, backoff_s=0.01,
                        sleep=lambda s: None,
                        ledger_path=tmp_path / "errors.jsonl")
        with pytest.raises(ExecutionError, match=r"bad \[permanent\]"):
            pool.run(tasks, loader=_load_square)
        report = pool.last_report
        assert report.failure_classes["bad"] == "permanent"
        assert report.retried == []  # no futile retries of a ConfigError
        ledger = [json.loads(line) for line in
                  (tmp_path / "errors.jsonl").read_text().splitlines()]
        attempts = [r for r in ledger if r["action"] == "attempt"]
        assert len(attempts) == 1
        assert attempts[0]["class"] == "permanent"

    def test_enospc_pauses_probes_and_recovers_without_charging(self, tmp_path):
        marker = str(tmp_path / "full.marker")
        path = tmp_path / "r.json"
        task = Task(key="point", path=path, fn=_enospc_once_then_square,
                    args=(marker, 6, str(path)))
        # max_attempts=1: if the ENOSPC attempt were charged, the point
        # could never succeed — the refund is what this asserts.
        pool = TaskPool(jobs=1, max_attempts=1, infra_pause_s=0.01,
                        ledger_path=tmp_path / "errors.jsonl")
        results = pool.run([task], loader=_load_square)
        assert results["point"] == 36
        assert pool.last_report.infra_pauses >= 1
        ledger = [json.loads(line) for line in
                  (tmp_path / "errors.jsonl").read_text().splitlines()]
        pauses = [r for r in ledger if r["action"] == "infra-pause"]
        assert pauses and all(r["class"] == "infrastructure" for r in pauses)

    def test_registered_rule_overrides_builtin(self, tmp_path):
        from repro.runtime.failures import (
            classify_failure,
            register_failure,
            reset_failure_rules,
        )
        assert classify_failure(RuntimeError("x")) == "transient"
        register_failure("permanent", RuntimeError,
                         when=lambda e: "fatal" in str(e))
        assert classify_failure(RuntimeError("fatal: x")) == "permanent"
        assert classify_failure(RuntimeError("x")) == "transient"
        reset_failure_rules()
        assert classify_failure(RuntimeError("fatal: x")) == "transient"


class TestKernelDegradation:
    def test_fallback_args_used_after_primary_failure(self, tmp_path):
        path = tmp_path / "r.json"
        task = Task(key="point", path=path, fn=_kernel_sensitive_square,
                    args=("fast", 7, str(path)),
                    fallback_args=("oracle", 7, str(path)))
        # max_attempts=1: the degradation re-run is free, so the point
        # still succeeds even though its single attempt failed.
        pool = TaskPool(jobs=1, max_attempts=1,
                        ledger_path=tmp_path / "errors.jsonl")
        results = pool.run([task], loader=_load_square)
        assert results["point"] == 49
        assert pool.last_report.degraded == ["point"]
        ledger = [json.loads(line) for line in
                  (tmp_path / "errors.jsonl").read_text().splitlines()]
        assert [r["action"] for r in ledger] == ["attempt", "degraded"]

    def test_degradation_happens_at_most_once(self, tmp_path):
        path = tmp_path / "r.json"
        task = Task(key="point", path=path, fn=_kernel_sensitive_square,
                    args=("fast", 7, str(path)),
                    fallback_args=("fast", 7, str(path)))  # fallback also bad
        pool = TaskPool(jobs=1, max_attempts=2, backoff_s=0,
                        sleep=lambda s: None,
                        ledger_path=tmp_path / "errors.jsonl")
        with pytest.raises(ExecutionError):
            pool.run([task], loader=_load_square)
        ledger = [json.loads(line) for line in
                  (tmp_path / "errors.jsonl").read_text().splitlines()]
        assert [r["action"] for r in ledger].count("degraded") == 1


class TestBackoffSchedule:
    def test_backoff_bounded_and_jitter_deterministic(self):
        pool = TaskPool(jobs=1, backoff_s=0.5, backoff_max_s=4.0,
                        backoff_jitter=0.25, seed=7)
        twin = TaskPool(jobs=1, backoff_s=0.5, backoff_max_s=4.0,
                        backoff_jitter=0.25, seed=7)
        other = TaskPool(jobs=1, backoff_s=0.5, backoff_max_s=4.0,
                         backoff_jitter=0.25, seed=8)
        delays = [pool.backoff_for("k", attempt) for attempt in range(1, 12)]
        # Bounded: never beyond the cap plus its jitter fraction.
        assert all(d <= 4.0 * 1.25 for d in delays)
        assert all(d >= 0.5 for d in delays)
        # Deterministic per (seed, key, attempt); different seeds differ.
        assert delays == [twin.backoff_for("k", a) for a in range(1, 12)]
        assert delays != [other.backoff_for("k", a) for a in range(1, 12)]
        # Exponential base growth before the cap.
        plain = TaskPool(jobs=1, backoff_s=0.5, backoff_max_s=64.0,
                         backoff_jitter=0)
        assert [plain.backoff_for("k", a) for a in (1, 2, 3)] == \
            [0.5, 1.0, 2.0]

    def test_retry_wait_does_not_block_completed_work(self, tmp_path):
        """Retries are scheduled, not slept through: other queued tasks
        complete before the engine waits out a backoff."""
        events = []

        class Recorder(ProgressReporter):
            def task_done(self, key):
                events.append(("done", key))

            def task_retry(self, key, attempt, error, *, classification):
                events.append(("retry", key))

        flaky_path = tmp_path / "flaky.json"
        tasks = [Task(key="flaky", path=flaky_path, fn=_flaky_square,
                      args=(str(tmp_path / "calls"), 1, 6, str(flaky_path))),
                 _square_task(tmp_path, 3)]
        pool = TaskPool(jobs=1, backoff_s=5.0, backoff_jitter=0,
                        clock=lambda: 0.0,
                        sleep=lambda s: events.append(("sleep", s)),
                        progress=Recorder())
        results = pool.run(tasks, loader=_load_square)
        assert results["flaky"] == 36 and results["sq3"] == 9
        # The healthy task finished before any backoff sleep happened.
        assert events.index(("done", "sq3")) < events.index(("sleep", 5.0))


class TestRunReport:
    def test_run_report_written_next_to_ledger(self, tmp_path):
        from repro.runtime import REPORT_NAME
        tasks = [_square_task(tmp_path, n) for n in (1, 2)]
        pool = TaskPool(jobs=1, ledger_path=tmp_path / "errors.jsonl")
        pool.run(tasks, loader=_load_square)
        payload = json.loads((tmp_path / REPORT_NAME).read_text())
        assert payload["schema_version"] == 2
        assert payload["tasks"] == 2
        assert payload["counts"]["computed"] == 2
        assert payload["counts"]["failed"] == 0
        assert payload["pool"]["final_mode"] == "inline"
        assert payload["elapsed_s"] >= 0
        # v2 additions; the local scheduler has no named workers.
        assert payload["scheduler"] == "local"
        assert payload["workers"] == {}
        assert payload["leases"] == {"revoked": 0}

    def test_schema_v2_preserves_every_v1_field(self, tmp_path):
        """Version gate: a v1 reader consuming only v1 fields keeps
        working on a v2 report — every v1 key is present with its v1
        shape, and the v2 additions are separate new keys."""
        from repro.runtime import REPORT_NAME
        tasks = [_square_task(tmp_path, n) for n in (1, 2)]
        pool = TaskPool(jobs=1, ledger_path=tmp_path / "errors.jsonl")
        pool.run(tasks, loader=_load_square)
        payload = json.loads((tmp_path / REPORT_NAME).read_text())
        v1_shapes = {"schema_version": int, "jobs": int, "tasks": int,
                     "elapsed_s": (int, float), "counts": dict,
                     "pool": dict, "failure_classes": dict, "failed": dict,
                     "degraded_keys": list, "timeout_keys": list}
        for key, shape in v1_shapes.items():
            assert isinstance(payload[key], shape), key
        for count in ("reused", "computed", "quarantined", "retries",
                      "timeouts", "degraded", "infra_pauses", "failed"):
            assert isinstance(payload["counts"][count], int)
        for key in ("rebuilds", "watchdog_kills", "final_mode"):
            assert key in payload["pool"]

    def test_describe_run_report_accepts_v1_payload(self):
        """A v1 report (no scheduler/workers/leases keys) still renders."""
        v1 = {"schema_version": 1,
              "counts": {"computed": 3, "reused": 1, "failed": 0},
              "pool": {"rebuilds": 0, "watchdog_kills": 0,
                       "final_mode": "pool"},
              "failure_classes": {}}
        line = describe_run_report(v1)
        assert "computed 3" in line and "reused 1" in line
        assert "workers" not in line and "leases" not in line

    def test_describe_run_report_renders_v2_fleet_fields(self):
        v2 = {"schema_version": 2, "scheduler": "fleet",
              "counts": {"computed": 4, "reused": 0, "failed": 0},
              "pool": {"rebuilds": 0, "watchdog_kills": 0,
                       "final_mode": "fleet"},
              "workers": {"w1": {"tasks": 2}, "w2": {"tasks": 2}},
              "leases": {"revoked": 3},
              "failure_classes": {}}
        line = describe_run_report(v2)
        assert "workers 2" in line and "leases revoked 3" in line

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(shapes=st.lists(st.sampled_from(["good", "flaky", "bad"]),
                           min_size=1, max_size=6))
    def test_run_report_counts_consistent_with_ledger(self, tmp_path, shapes):
        """Property: whatever mix of healthy/flaky/permanently-failing
        tasks runs, run_report.json agrees with the error ledger and the
        task list."""
        from repro.runtime import REPORT_NAME
        run_dir = tmp_path / f"case-{len(list(tmp_path.iterdir()))}"
        run_dir.mkdir()
        tasks = []
        for index, shape in enumerate(shapes):
            path = run_dir / f"t{index}.json"
            if shape == "good":
                tasks.append(Task(key=f"t{index}", path=path,
                                  fn=_write_square,
                                  args=(index, str(path))))
            elif shape == "flaky":
                tasks.append(Task(key=f"t{index}", path=path,
                                  fn=_flaky_square,
                                  args=(str(run_dir / f"calls{index}"), 1,
                                        index, str(path))))
            else:
                tasks.append(Task(key=f"t{index}", path=path,
                                  fn=_always_fail, args=(str(path),)))
        pool = TaskPool(jobs=1, max_attempts=2, backoff_s=0,
                        sleep=lambda s: None,
                        ledger_path=run_dir / "errors.jsonl")
        try:
            pool.run(tasks, loader=_load_square)
        except ExecutionError:
            pass
        payload = json.loads((run_dir / REPORT_NAME).read_text())
        counts = payload["counts"]
        assert payload["tasks"] == len(tasks)
        assert counts["computed"] + counts["reused"] + counts["failed"] \
            == len(tasks)
        ledger_path = run_dir / "errors.jsonl"
        ledger = ([json.loads(line) for line in
                   ledger_path.read_text().splitlines()]
                  if ledger_path.exists() else [])
        abandoned = {r["key"] for r in ledger if r["action"] == "abandoned"}
        assert set(payload["failed"]) == abandoned
        assert counts["failed"] == len(abandoned)
        for key, detail in payload["failed"].items():
            assert detail["class"] in ("transient", "permanent", "timeout",
                                       "infrastructure")
        class_totals = sum(payload["failure_classes"].values())
        assert class_totals == counts["failed"]


class TestDurableWrites:
    def test_durable_write_fsyncs_file_and_directory(self, tmp_path,
                                                     monkeypatch):
        import os
        synced = []
        real_fsync = os.fsync

        def spy(fd):
            synced.append(fd)
            real_fsync(fd)

        monkeypatch.setattr(os, "fsync", spy)
        path = tmp_path / "r.json"
        write_atomic(path, "payload", durable=True)
        assert path.read_text() == "payload"
        assert len(synced) == 2  # the temp file, then the parent directory

    def test_default_write_skips_fsync(self, tmp_path, monkeypatch):
        import os
        synced = []
        monkeypatch.setattr(os, "fsync", lambda fd: synced.append(fd))
        write_atomic(tmp_path / "r.json", "payload")
        assert synced == []
