"""Integration tests for the paper's artifact claims (Appendix A.5).

C1.1 — reduced tRAS either leaves RowHammer vulnerability unchanged or
        worsens it (lower N_RH, higher BER); beyond a safe minimum it causes
        data-retention failures (Figs. 6, 9).
C1.2 — repeated partial charge restoration can cause retention failures, so
        reduced latency is not safe for *all* refreshes (Fig. 11).
C2.1 — PaCRAM improves system performance for single-core and
        multiprogrammed workloads (Figs. 16, 17).
C2.2 — PaCRAM improves energy efficiency (Fig. 18).
"""

import pytest

from repro.analysis.runner import pacram_reference_config, run_simulation
from repro.characterization.sweeps import characterize_module
from repro.sim.config import SystemConfig
from repro.sim.stats import weighted_speedup
from repro.workloads.suites import multicore_mixes

WORKLOADS = ("spec06.mcf", "ycsb.a", "spec06.lbm")
REQUESTS = 2_500


@pytest.fixture(scope="module")
def s6_characterization():
    return characterize_module(
        "S6", tras_factors=(1.0, 0.64, 0.45, 0.36, 0.27, 0.18),
        per_region=16)


class TestClaim11:
    def test_nrh_never_improves_under_reduction(self, s6_characterization):
        nominal = s6_characterization.lowest_nrh(1.0)
        for factor in (0.64, 0.45, 0.36, 0.27):
            reduced = s6_characterization.lowest_nrh(factor)
            assert reduced <= nominal * 1.05, factor

    def test_nrh_degrades_monotonically_for_s(self, s6_characterization):
        lows = [s6_characterization.lowest_nrh(f)
                for f in (0.64, 0.45, 0.36, 0.27)]
        assert all(a >= b for a, b in zip(lows, lows[1:]))

    def test_ber_grows_under_reduction(self, s6_characterization):
        nominal = s6_characterization.normalized_ber(1.0)
        reduced = s6_characterization.normalized_ber(0.27)
        assert sum(reduced) / len(reduced) > sum(nominal) / len(nominal)

    def test_retention_failures_beyond_safe_minimum(self, s6_characterization):
        assert s6_characterization.lowest_nrh(0.18) == 0


class TestClaim12:
    def test_repeated_partial_restoration_unsafe(self):
        result = characterize_module(
            "S6", tras_factors=(0.27,), n_prs=(1, 2), per_region=12)
        assert result.lowest_nrh(0.27, 1) > 0
        assert result.lowest_nrh(0.27, 2) == 0


class TestClaim21Performance:
    @pytest.mark.parametrize("mitigation", ["PARA", "RFM"])
    def test_single_core_speedup_high_overhead_mitigations(self, mitigation):
        pacram = pacram_reference_config("H")
        improvements = []
        for name in WORKLOADS:
            base = run_simulation((name,), mitigation=mitigation, nrh=64,
                                  requests=REQUESTS)
            with_pacram = run_simulation((name,), mitigation=mitigation,
                                         nrh=64, pacram=pacram,
                                         requests=REQUESTS)
            improvements.append(with_pacram.mean_ipc / base.mean_ipc)
        assert sum(improvements) / len(improvements) > 1.0

    def test_multicore_weighted_speedup(self):
        mix = multicore_mixes(1)[0]
        config = SystemConfig(num_cores=4)
        pacram = pacram_reference_config("H")
        base = run_simulation(mix, mitigation="RFM", nrh=64,
                              requests=REQUESTS, config=config)
        with_pacram = run_simulation(mix, mitigation="RFM", nrh=64,
                                     pacram=pacram, requests=REQUESTS,
                                     config=config)
        ws = weighted_speedup(with_pacram.ipc, base.ipc)
        assert ws > len(mix) * 0.999

    def test_gains_grow_as_nrh_shrinks(self):
        # Fig. 17 obs. 2: PaCRAM helps more at lower N_RH.
        pacram = pacram_reference_config("H")
        gains = {}
        for nrh in (1024, 32):
            base = run_simulation(("spec06.mcf",), mitigation="RFM",
                                  nrh=nrh, requests=REQUESTS)
            fast = run_simulation(("spec06.mcf",), mitigation="RFM",
                                  nrh=nrh, pacram=pacram, requests=REQUESTS)
            gains[nrh] = fast.mean_ipc / base.mean_ipc
        assert gains[32] > gains[1024]

    def test_preventive_time_reduced(self):
        pacram = pacram_reference_config("H")
        base = run_simulation(("ycsb.a",), mitigation="PARA", nrh=32,
                              requests=REQUESTS)
        fast = run_simulation(("ycsb.a",), mitigation="PARA", nrh=32,
                              pacram=pacram, requests=REQUESTS)
        assert fast.preventive_busy_fraction < base.preventive_busy_fraction


class TestClaim22Energy:
    @pytest.mark.parametrize("vendor", ["H", "M"])
    def test_energy_reduced_with_pacram(self, vendor):
        pacram = pacram_reference_config(vendor)
        savings = []
        for name in WORKLOADS:
            base = run_simulation((name,), mitigation="PARA", nrh=32,
                                  requests=REQUESTS)
            fast = run_simulation((name,), mitigation="PARA", nrh=32,
                                  pacram=pacram, requests=REQUESTS)
            savings.append(fast.energy_nj / base.energy_nj)
        assert sum(savings) / len(savings) < 1.0

    def test_energy_grows_as_nrh_shrinks(self):
        # Fig. 18 obs. 3: all configurations consume more at lower N_RH.
        low = run_simulation(("spec06.mcf",), mitigation="RFM", nrh=1024,
                             requests=REQUESTS)
        high = run_simulation(("spec06.mcf",), mitigation="RFM", nrh=32,
                              requests=REQUESTS)
        assert high.energy_nj > low.energy_nj


class TestMitigationOrdering:
    def test_fig3_overhead_ordering(self):
        # Fig. 3: RFM and PARA spend the most time on preventive refreshes;
        # Graphene and Hydra the least.
        fractions = {}
        for mitigation in ("PARA", "RFM", "Hydra", "Graphene"):
            result = run_simulation(("ycsb.a",), mitigation=mitigation,
                                    nrh=64, requests=REQUESTS)
            fractions[mitigation] = result.preventive_busy_fraction
        assert fractions["RFM"] >= fractions["PARA"]
        assert fractions["PARA"] >= fractions["Graphene"]
        assert fractions["RFM"] > fractions["Hydra"]

    def test_overheads_grow_as_nrh_shrinks(self):
        for mitigation in ("PARA", "RFM"):
            low = run_simulation(("ycsb.a",), mitigation=mitigation,
                                 nrh=1024, requests=REQUESTS)
            high = run_simulation(("ycsb.a",), mitigation=mitigation,
                                  nrh=32, requests=REQUESTS)
            assert (high.preventive_busy_fraction
                    > low.preventive_busy_fraction)
