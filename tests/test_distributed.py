"""Tests for the fleet scheduler: wire protocol, codec, coordinator."""

import json
import os
import pickle
import socket
import threading
from pathlib import Path

import pytest

from repro.errors import ConfigError, ExecutionError
from repro.runtime import (
    SCHEDULER_NAMES,
    Task,
    TaskPool,
    make_scheduler,
    parse_address,
    validate_scheduler,
    write_atomic,
)
from repro.runtime.distributed import FleetScheduler, echo_point, run_worker
from repro.runtime.wire import (
    BLOB_MIN,
    COMPRESS_MIN,
    FrameError,
    blob_digest,
    callable_ref,
    canonical_blob,
    decode_value,
    encode_value,
    intern_args,
    recv_frame,
    referenced_blobs,
    resolve_callable,
    send_frame,
)


# ----------------------------------------------------------------------
# worker functions (module-level: workers resolve them by reference)
# ----------------------------------------------------------------------
def _load_echo(path):
    payload = json.loads(path.read_text())
    if set(payload) != {"n", "echo"}:
        raise ValueError(f"malformed echo result at {path}")
    return payload["echo"]


def _bad_config(n, path):
    raise ConfigError(f"point {n} rejected (injected)")


def _flaky_echo(marker, n, path):
    """Fails once (marker claims first-failure state), then succeeds."""
    import os
    try:
        os.close(os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
        raise ValueError("transient hiccup (injected)")
    except FileExistsError:
        echo_point(n, path)


def _kernel_echo(n, path, broken):
    """Primary args run with ``broken=True`` and raise; the fallback args
    carry ``broken=False`` — the degradation-path stand-in."""
    if broken:
        raise RuntimeError("fast kernel exploded (injected)")
    echo_point(n, path)


def _sibling_writer(n, path):
    """Writes its row plus a sibling ledger file next to it."""
    echo_point(n, path)
    from pathlib import Path
    sibling = Path(path).with_suffix(".violations.jsonl")
    write_atomic(sibling, json.dumps({"n": n, "violations": []}) + "\n")


# ----------------------------------------------------------------------
# frames
# ----------------------------------------------------------------------
def _socket_pair():
    left, right = socket.socketpair()
    return left, right


class TestFrames:
    def test_roundtrip_small_message(self):
        left, right = _socket_pair()
        message = {"type": "hello", "worker": "w1", "n": 7}
        sent = send_frame(left, message)
        assert recv_frame(right) == message
        # Small frames ship uncompressed: header + payload.
        assert sent == 5 + len(json.dumps(message, separators=(",", ":")))
        left.close(), right.close()

    def test_large_frames_compress(self):
        left, right = _socket_pair()
        message = {"blob": "x" * (4 * COMPRESS_MIN)}
        sent = send_frame(left, message)
        assert sent < COMPRESS_MIN  # zlib crushes the repetition
        assert recv_frame(right) == message
        left.close(), right.close()

    def test_clean_eof_returns_none(self):
        left, right = _socket_pair()
        left.close()
        assert recv_frame(right) is None
        right.close()

    def test_mid_frame_eof_raises(self):
        left, right = _socket_pair()
        left.sendall(b"\x00\x00\x00\x00\x10partial")
        left.close()
        with pytest.raises(ConnectionError, match="mid-frame"):
            recv_frame(right)
        right.close()

    def test_oversized_length_prefix_rejected(self):
        import struct
        left, right = _socket_pair()
        left.sendall(struct.pack("!BI", 0, 2**31))
        with pytest.raises(FrameError, match="cap"):
            recv_frame(right)
        left.close(), right.close()

    def test_non_object_frame_rejected(self):
        import struct
        left, right = _socket_pair()
        blob = b"[1,2,3]"
        left.sendall(struct.pack("!BI", 0, len(blob)) + blob)
        with pytest.raises(FrameError, match="object"):
            recv_frame(right)
        left.close(), right.close()


# ----------------------------------------------------------------------
# value codec
# ----------------------------------------------------------------------
class TestValueCodec:
    def test_scalars_pass_through(self):
        for value in (None, True, 3, 2.5, "plain"):
            assert decode_value(encode_value(value)) == value

    def test_tuple_and_path_roundtrip(self):
        from pathlib import Path
        value = (1, "two", (3.0, None), Path("/tmp/row.json"))
        decoded = decode_value(encode_value(value))
        assert decoded == value
        assert isinstance(decoded, tuple)
        assert isinstance(decoded[3], Path)

    def test_dataclass_roundtrip(self):
        from repro.analysis.sweeprunner import SweepPoint
        point = SweepPoint("PARA", 64, None, ("spec06.mcf",))
        decoded = decode_value(encode_value(point))
        assert decoded == point
        assert isinstance(decoded, SweepPoint)
        assert isinstance(decoded.workloads, tuple)

    def test_task_path_sentinel_substituted(self):
        encoded = encode_value(("/here/row.json", "unrelated"),
                               task_path="/here/row.json")
        decoded = decode_value(encoded, task_path="/scratch/row.json")
        assert decoded == ("/scratch/row.json", "unrelated")

    def test_tag_colliding_dict_key_rejected(self):
        with pytest.raises(ConfigError, match="collides"):
            encode_value({"__t": 1})

    def test_non_string_dict_key_rejected(self):
        with pytest.raises(ConfigError, match="string dict keys"):
            encode_value({1: "x"})

    def test_unshippable_type_rejected(self):
        with pytest.raises(ConfigError, match="cannot ship"):
            encode_value(object())

    def test_callable_ref_roundtrip(self):
        ref = callable_ref(echo_point)
        assert ref == "repro.runtime.distributed:echo_point"
        assert resolve_callable(ref) is echo_point

    def test_callable_ref_rejects_closures(self):
        with pytest.raises(ConfigError, match="module-level"):
            callable_ref(lambda: None)


class TestBlobInterning:
    def test_heavy_args_interned_small_args_inline(self):
        table = {}
        heavy = {"config": "y" * (2 * BLOB_MIN)}
        args = intern_args([encode_value(heavy), encode_value(3)], table)
        assert args[1] == 3
        (digest,) = table
        assert args[0] == {"__blob": digest}
        assert digest == blob_digest(canonical_blob(encode_value(heavy)))
        assert referenced_blobs(args) == {digest}
        assert decode_value(args[0], blobs=table) == heavy

    def test_missing_blob_body_is_an_error(self):
        with pytest.raises(ConfigError, match="unknown blob"):
            decode_value({"__blob": "feedfacefeedface"}, blobs={})

    def test_interning_dedupes_identical_payloads(self):
        table = {}
        heavy = encode_value({"config": "z" * (2 * BLOB_MIN)})
        intern_args([heavy], table)
        intern_args([heavy], table)
        assert len(table) == 1


# ----------------------------------------------------------------------
# scheduler registry
# ----------------------------------------------------------------------
class TestSchedulerRegistry:
    def test_names_and_validation(self):
        assert SCHEDULER_NAMES == ("local", "fleet")
        assert validate_scheduler("local") == "local"
        with pytest.raises(ConfigError, match="scheduler"):
            validate_scheduler("slurm")

    def test_parse_address(self):
        assert parse_address("127.0.0.1:7045") == ("127.0.0.1", 7045)
        assert parse_address(":7045") == ("0.0.0.0", 7045)
        for bad in ("nohost", "host:", "host:notaport", "host:70000"):
            with pytest.raises(ConfigError):
                parse_address(bad)

    def test_local_is_a_plain_task_pool(self):
        pool = make_scheduler("local", jobs=1)
        assert type(pool) is TaskPool

    def test_local_rejects_fleet_only_knobs(self):
        with pytest.raises(ConfigError, match="fleet"):
            make_scheduler("local", workers=2)

    def test_fleet_needs_some_worker_source(self):
        with pytest.raises(ConfigError, match="worker"):
            make_scheduler("fleet", workers=0)

    def test_fleet_scheduler_is_a_task_pool(self):
        pool = make_scheduler("fleet", workers=1, jobs=1)
        assert isinstance(pool, FleetScheduler)
        assert isinstance(pool, TaskPool)


# ----------------------------------------------------------------------
# end-to-end over loopback
# ----------------------------------------------------------------------
def _echo_tasks(directory, count=6):
    return [Task(key=f"p{n}", path=directory / f"p{n}.json", fn=echo_point,
                 args=(n, str(directory / f"p{n}.json")))
            for n in range(count)]


def _result_bytes(directory):
    return {p.name: p.read_bytes() for p in sorted(directory.glob("*.json"))
            if p.name != "run_report.json"}


class TestFleetEndToEnd:
    def test_byte_identical_to_local_and_report_v2(self, tmp_path):
        local_dir, fleet_dir = tmp_path / "local", tmp_path / "fleet"
        TaskPool(jobs=1).run(_echo_tasks(local_dir), loader=_load_echo)
        pool = make_scheduler(
            "fleet", workers=2, ledger_path=fleet_dir / "errors.jsonl",
            report_path=fleet_dir / "run_report.json")
        results = pool.run(_echo_tasks(fleet_dir), loader=_load_echo)
        assert results == {f"p{n}": n * n + 1 for n in range(6)}
        assert _result_bytes(fleet_dir) == _result_bytes(local_dir)
        report = json.loads((fleet_dir / "run_report.json").read_text())
        assert report["schema_version"] == 2
        assert report["scheduler"] == "fleet"
        assert report["pool"]["final_mode"] == "fleet"
        assert sum(stats["tasks"]
                   for stats in report["workers"].values()) == 6
        assert report["leases"] == {"revoked": 0}

    def test_resume_reuses_persisted_results(self, tmp_path):
        tasks = _echo_tasks(tmp_path)
        make_scheduler("fleet", workers=1).run(tasks, loader=_load_echo)
        pool = make_scheduler("fleet", workers=1,
                              report_path=tmp_path / "run_report.json")
        pool.run(_echo_tasks(tmp_path), loader=_load_echo)
        report = json.loads((tmp_path / "run_report.json").read_text())
        assert report["counts"]["reused"] == 6
        assert report["counts"]["computed"] == 0

    def test_lease_batching_amortizes_round_trips(self, tmp_path):
        pool = make_scheduler("fleet", workers=1, lease_batch=6)
        results = pool.run(_echo_tasks(tmp_path), loader=_load_echo)
        assert len(results) == 6

    def test_permanent_failure_classified_with_worker_attribution(
            self, tmp_path):
        tasks = _echo_tasks(tmp_path, count=3)
        bad = Task(key="bad", path=tmp_path / "bad.json", fn=_bad_config,
                   args=(9, str(tmp_path / "bad.json")))
        pool = make_scheduler("fleet", workers=2,
                              ledger_path=tmp_path / "errors.jsonl")
        with pytest.raises(ExecutionError, match=r"bad \[permanent\]"):
            pool.run(tasks + [bad], loader=_load_echo)
        assert len(_result_bytes(tmp_path)) == 3  # survivors all landed
        records = [json.loads(line) for line in
                   (tmp_path / "errors.jsonl").read_text().splitlines()]
        attempts = [r for r in records if r["action"] == "attempt"
                    and r["key"] == "bad"]
        assert len(attempts) == 1  # permanent: no futile retries
        assert attempts[0]["class"] == "permanent"
        assert attempts[0]["worker"].startswith("w")

    def test_transient_failure_retries_to_success(self, tmp_path):
        marker = str(tmp_path / "flaky.marker")
        flaky = Task(key="fl", path=tmp_path / "fl.json", fn=_flaky_echo,
                     args=(marker, 4, str(tmp_path / "fl.json")))
        pool = make_scheduler("fleet", workers=1, backoff_s=0.01,
                              ledger_path=tmp_path / "errors.jsonl")
        results = pool.run([flaky], loader=_load_echo)
        assert results["fl"] == 17
        assert pool.last_report.retried == ["fl"]

    def test_worker_side_fallback_degradation(self, tmp_path):
        path = tmp_path / "deg.json"
        task = Task(key="deg", path=path, fn=_kernel_echo,
                    args=(5, str(path), True),
                    fallback_args=(5, str(path), False))
        pool = make_scheduler("fleet", workers=1,
                              ledger_path=tmp_path / "errors.jsonl",
                              report_path=tmp_path / "run_report.json")
        results = pool.run([task], loader=_load_echo)
        assert results["deg"] == 26
        report = json.loads((tmp_path / "run_report.json").read_text())
        assert report["degraded_keys"] == ["deg"]
        assert report["counts"]["retries"] == 0  # degradation is free

    def test_sibling_files_ship_back_with_the_result(self, tmp_path):
        path = tmp_path / "row.json"
        task = Task(key="row", path=path, fn=_sibling_writer,
                    args=(2, str(path)))
        results = make_scheduler("fleet", workers=1).run(
            [task], loader=_load_echo)
        assert results["row"] == 5
        sibling = json.loads(
            (tmp_path / "row.violations.jsonl").read_text())
        assert sibling == {"n": 2, "violations": []}

    def test_external_worker_over_serve_address(self, tmp_path):
        pool = make_scheduler("fleet", workers=0, serve="127.0.0.1:0",
                              report_path=tmp_path / "run_report.json")
        tasks = _echo_tasks(tmp_path)
        results = {}
        errors = []

        def drive():
            try:
                results.update(pool.run(tasks, loader=_load_echo))
            except Exception as error:  # noqa: BLE001 — surfaced below
                errors.append(error)

        coordinator = threading.Thread(target=drive)
        coordinator.start()
        try:
            assert pool.serving.wait(timeout=10.0)
            host, port = pool.bound_address
            assert run_worker(host, port, worker_id="ext-1",
                              scratch_dir=tmp_path / "scratch") == 0
        finally:
            coordinator.join(timeout=30.0)
        assert not errors and not coordinator.is_alive()
        assert results == {f"p{n}": n * n + 1 for n in range(6)}
        report = json.loads((tmp_path / "run_report.json").read_text())
        assert set(report["workers"]) == {"ext-1"}

    def test_digest_payloads_smaller_than_pickled_task(self, tmp_path):
        """The perf claim behind blob interning: once a worker holds the
        config blob, each further lease spec is smaller than the naive
        wire baseline of pickling the whole Task."""
        from repro.characterization.campaign import (
            CampaignConfig,
            CharacterizationCampaign,
        )
        campaign = CharacterizationCampaign(tmp_path,
                                            CampaignConfig(per_region=4))
        task = campaign._task("S6")
        run = _FakeRun()
        spec = run.spec(task)
        pickled = len(pickle.dumps(task))
        warm = len(canonical_blob(spec))  # blob already at the worker
        assert warm < pickled
        assert referenced_blobs(spec["args"])  # the config was interned


class _FakeRun:
    """Just enough of a coordinator to encode one task spec."""

    def __init__(self):
        self.blob_table = {}

    def spec(self, task):
        from repro.runtime.distributed import _FleetRun
        return _FleetRun.__dict__["_spec"](self, task, 1)


class TestConnectRetry:
    """Bounded, backing-off connects for workers and job clients."""

    def test_gives_up_with_clear_error(self):
        from repro.runtime.wire import connect_with_retry
        # Bind-without-listen: connects are refused deterministically.
        closed = socket.socket()
        closed.bind(("127.0.0.1", 0))
        port = closed.getsockname()[1]
        try:
            with pytest.raises(ConfigError, match="could not connect"):
                connect_with_retry("127.0.0.1", port, timeout_s=0.3)
        finally:
            closed.close()

    def test_rejects_nonpositive_timeout(self):
        from repro.runtime.wire import connect_with_retry
        with pytest.raises(ConfigError, match="timeout"):
            connect_with_retry("127.0.0.1", 1, timeout_s=0)

    def test_survives_a_late_listener(self):
        """The startup race: a worker launched moments before its
        coordinator must retry into the listen window, not die."""
        from repro.runtime.wire import connect_with_retry
        server = socket.socket()
        server.bind(("127.0.0.1", 0))
        port = server.getsockname()[1]

        def listen_late():
            import time as _time
            _time.sleep(0.3)
            server.listen(1)

        opener = threading.Thread(target=listen_late)
        opener.start()
        try:
            sock = connect_with_retry("127.0.0.1", port, timeout_s=10.0)
            sock.close()
        finally:
            opener.join()
            server.close()

    def test_worker_fails_fast_on_dead_coordinator(self):
        closed = socket.socket()
        closed.bind(("127.0.0.1", 0))
        port = closed.getsockname()[1]
        try:
            with pytest.raises(ConfigError, match="could not connect"):
                run_worker("127.0.0.1", port, connect_timeout_s=0.3)
        finally:
            closed.close()


_INTERRUPT_SCRIPT = """\
import os
import sys
import time
from pathlib import Path

from repro.runtime import Task, make_scheduler


def slow_task(n, pid_dir, path):
    Path(pid_dir, f"pid-{os.getpid()}").write_text(str(os.getpid()))
    time.sleep(60)


def load(path):
    return 1


if __name__ == "__main__":
    out = Path(sys.argv[1])
    pid_dir = out / "pids"
    pid_dir.mkdir(parents=True, exist_ok=True)
    tasks = [Task(key=f"p{n}", path=out / f"p{n}.json", fn=slow_task,
                  args=(n, str(pid_dir), str(out / f"p{n}.json")))
             for n in range(4)]
    pool = make_scheduler("fleet", workers=2, lease_batch=1,
                          report_path=out / "run_report.json")
    pool.run(tasks, loader=load)
"""


class TestFleetShutdown:
    def test_interrupt_leaves_no_surviving_workers(self, tmp_path):
        """Regression: Ctrl-C mid-fleet-run must SIGTERM-and-join the
        spawned loopback workers, not orphan them mid-task."""
        import signal
        import subprocess
        import sys
        import time

        script = tmp_path / "fleet_run.py"
        script.write_text(_INTERRUPT_SCRIPT)
        out = tmp_path / "out"
        pid_dir = out / "pids"
        env = dict(os.environ)
        root = Path(__file__).resolve().parent.parent
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [str(root / "src"), env.get("PYTHONPATH")]))
        proc = subprocess.Popen(
            [sys.executable, str(script), str(out)], env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        try:
            # Both workers are live and parked inside a leased task once
            # their pid files appear (lease_batch=1 spreads the tasks).
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if len(list(pid_dir.glob("pid-*"))) >= 2:
                    break
                assert proc.poll() is None, "coordinator died prematurely"
                time.sleep(0.05)
            pids = [int(p.name.split("-")[1])
                    for p in pid_dir.glob("pid-*")]
            assert len(pids) >= 2
            proc.send_signal(signal.SIGINT)
            proc.wait(timeout=30.0)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                alive = []
                for pid in pids:
                    try:
                        os.kill(pid, 0)
                        alive.append(pid)
                    except ProcessLookupError:
                        pass
                if not alive:
                    break
                time.sleep(0.05)
            assert not alive, f"workers survived the interrupt: {alive}"
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10.0)
