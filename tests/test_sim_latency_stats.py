"""Tests for read-latency statistics and their response to interference."""

import pytest

from repro.mitigations import make_mitigation
from repro.sim.config import SystemConfig
from repro.sim.stats import LatencySummary
from repro.sim.system import MemorySystem


class TestLatencySummary:
    def test_empty(self):
        summary = LatencySummary.from_values([])
        assert summary.count == 0
        assert summary.mean_ns == 0.0

    def test_basic_quantiles(self):
        values = [float(v) for v in range(1, 101)]
        summary = LatencySummary.from_values(values)
        assert summary.count == 100
        assert summary.mean_ns == pytest.approx(50.5)
        assert summary.p50_ns == 51.0
        assert summary.p99_ns == 100.0
        assert summary.max_ns == 100.0

    def test_single_value(self):
        summary = LatencySummary.from_values([42.0])
        assert summary.p50_ns == summary.p99_ns == summary.max_ns == 42.0

    def test_ordering_invariant(self):
        summary = LatencySummary.from_values([5.0, 1.0, 9.0, 3.0])
        assert summary.p50_ns <= summary.p99_ns <= summary.max_ns


class TestSimulationLatency:
    def test_counts_match_reads(self, single_core_config, small_trace):
        result = MemorySystem(single_core_config, [small_trace]).run()
        assert result.read_latency.count == result.controller_stats.reads

    def test_latency_at_least_cas(self, single_core_config, small_trace):
        result = MemorySystem(single_core_config, [small_trace]).run()
        timing = single_core_config.timing
        assert result.read_latency.p50_ns >= timing.tCL

    def test_mitigation_interference_raises_tail_latency(
            self, single_core_config, hot_trace):
        clean = MemorySystem(single_core_config, [hot_trace]).run()
        noisy = MemorySystem(single_core_config, [hot_trace],
                             mitigation=make_mitigation("RFM", 32)).run()
        assert noisy.read_latency.mean_ns > clean.read_latency.mean_ns
