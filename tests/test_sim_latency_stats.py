"""Tests for read-latency statistics and their response to interference."""

import numpy as np
import pytest

from repro.mitigations import make_mitigation
from repro.sim.config import SystemConfig
from repro.sim.stats import LatencyAccumulator, LatencySummary
from repro.sim.system import MemorySystem


class TestLatencySummary:
    def test_empty(self):
        summary = LatencySummary.from_values([])
        assert summary.count == 0
        assert summary.mean_ns == 0.0

    def test_basic_quantiles(self):
        values = [float(v) for v in range(1, 101)]
        summary = LatencySummary.from_values(values)
        assert summary.count == 100
        assert summary.mean_ns == pytest.approx(50.5)
        assert summary.p50_ns == 51.0
        assert summary.p99_ns == 100.0
        assert summary.max_ns == 100.0

    def test_single_value(self):
        summary = LatencySummary.from_values([42.0])
        assert summary.p50_ns == summary.p99_ns == summary.max_ns == 42.0

    def test_ordering_invariant(self):
        summary = LatencySummary.from_values([5.0, 1.0, 9.0, 3.0])
        assert summary.p50_ns <= summary.p99_ns <= summary.max_ns


class TestLatencyAccumulator:
    """The streaming accumulator must reproduce the list-based summary
    bit for bit while holding memory bounded by *distinct* values."""

    def _reference(self, values):
        """The pre-streaming implementation: retain and sort the list."""
        if not values:
            return LatencySummary(count=0, mean_ns=0.0, p50_ns=0.0,
                                  p99_ns=0.0, max_ns=0.0)
        ordered = sorted(values)
        n = len(ordered)
        return LatencySummary(
            count=n, mean_ns=sum(ordered) / n, p50_ns=ordered[n // 2],
            p99_ns=ordered[min(n - 1, (n * 99) // 100)], max_ns=ordered[-1])

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_bit_exact_vs_list_reference(self, seed):
        rng = np.random.default_rng(seed)
        # Few distinct values, many repeats — the simulator's shape.
        values = [float(v) for v in
                  rng.choice([13.75, 27.5, 41.25, 63.0 + 1e-9, 250.125],
                             size=5000)]
        accumulator = LatencyAccumulator()
        for value in values:
            accumulator.add(value)
        assert accumulator.summary() == self._reference(values)

    def test_memory_bounded_by_distinct_values(self):
        accumulator = LatencyAccumulator()
        for i in range(100_000):
            accumulator.add(float(i % 17))
        assert accumulator.distinct() == 17
        assert accumulator.count == 100_000

    def test_empty(self):
        assert LatencyAccumulator().summary() == self._reference([])

    def test_all_repeats_of_one_value(self):
        accumulator = LatencyAccumulator()
        for _ in range(999):
            accumulator.add(7.25)
        summary = accumulator.summary()
        assert summary == self._reference([7.25] * 999)
        assert summary.mean_ns == 7.25

    def test_simulation_holds_few_distinct_latencies(
            self, single_core_config, small_trace):
        system = MemorySystem(single_core_config, [small_trace])
        result = system.run()
        assert system._latency.distinct() < result.read_latency.count


class TestSimulationLatency:
    def test_counts_match_reads(self, single_core_config, small_trace):
        result = MemorySystem(single_core_config, [small_trace]).run()
        assert result.read_latency.count == result.controller_stats.reads

    def test_latency_at_least_cas(self, single_core_config, small_trace):
        result = MemorySystem(single_core_config, [small_trace]).run()
        timing = single_core_config.timing
        assert result.read_latency.p50_ns >= timing.tCL

    def test_mitigation_interference_raises_tail_latency(
            self, single_core_config, hot_trace):
        clean = MemorySystem(single_core_config, [hot_trace]).run()
        noisy = MemorySystem(single_core_config, [hot_trace],
                             mitigation=make_mitigation("RFM", 32)).run()
        assert noisy.read_latency.mean_ns > clean.read_latency.mean_ns
