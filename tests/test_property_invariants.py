"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.boxstats import BoxStats
from repro.characterization.bisect import bisect_threshold
from repro.core.config import full_charge_restoration_interval_ns
from repro.core.fr_bitvector import FRBitVector
from repro.dram.catalog import module_spec
from repro.dram.charge import ChargeModel, interpolate_curve
from repro.dram.mapping import RowMapping
from repro.rng import derive_seed
from repro.sim.addrmap import AddressMapper
from repro.sim.config import SystemConfig
from repro.units import format_time_ns, ns_to_cycles


# ---------------------------------------------------------------------------
# units
# ---------------------------------------------------------------------------
@given(st.floats(min_value=0.0, max_value=1e9),
       st.floats(min_value=100.0, max_value=6400.0))
def test_ns_to_cycles_never_undershoots(time_ns, freq_mhz):
    cycles = ns_to_cycles(time_ns, freq_mhz)
    assert cycles * 1000.0 / freq_mhz >= time_ns - 1e-6


@given(st.floats(min_value=0.1, max_value=1e12))
def test_format_time_always_has_unit(time_ns):
    text = format_time_ns(time_ns)
    assert text.endswith(("ns", "us", "ms", "s"))


# ---------------------------------------------------------------------------
# seed tree
# ---------------------------------------------------------------------------
@given(st.integers(min_value=0, max_value=2**64 - 1),
       st.lists(st.text(max_size=8), min_size=1, max_size=4))
def test_derive_seed_stable_and_bounded(seed, path):
    a = derive_seed(seed, *path)
    b = derive_seed(seed, *path)
    assert a == b
    assert 0 <= a < 2**64


# ---------------------------------------------------------------------------
# interpolation
# ---------------------------------------------------------------------------
@given(st.dictionaries(st.floats(min_value=0.0, max_value=1.0,
                                 allow_nan=False),
                       st.floats(min_value=-100, max_value=100,
                                 allow_nan=False),
                       min_size=1, max_size=8),
       st.floats(min_value=-0.5, max_value=1.5, allow_nan=False))
def test_interpolation_within_anchor_range(anchors, x):
    value = interpolate_curve(anchors, x)
    assert min(anchors.values()) - 1e-9 <= value <= max(anchors.values()) + 1e-9


# ---------------------------------------------------------------------------
# row mapping
# ---------------------------------------------------------------------------
@given(st.integers(min_value=3, max_value=10),
       st.integers(min_value=0, max_value=255))
def test_row_mapping_bijective(rows_pow, mask):
    rows = 1 << rows_pow
    mapping = RowMapping(rows_per_bank=rows, scramble_mask=mask % rows)
    images = {mapping.logical_to_physical(r) for r in range(rows)}
    assert images == set(range(rows))


@given(st.integers(min_value=0, max_value=1023),
       st.integers(min_value=0, max_value=7))
def test_row_mapping_involution(row, mask):
    mapping = RowMapping(rows_per_bank=1024, scramble_mask=mask)
    assert mapping.physical_to_logical(
        mapping.logical_to_physical(row)) == row


@given(st.integers(min_value=2, max_value=1021),
       st.integers(min_value=0, max_value=7),
       st.integers(min_value=1, max_value=2))
def test_neighbors_at_claimed_distance(row, mask, distance):
    mapping = RowMapping(rows_per_bank=1024, scramble_mask=mask)
    for neighbor in mapping.neighbors(row, distance):
        assert mapping.physical_distance(row, neighbor) == distance


# ---------------------------------------------------------------------------
# address mapping
# ---------------------------------------------------------------------------
@given(st.integers(min_value=0, max_value=2**40))
@settings(max_examples=50)
def test_addrmap_round_trip(address):
    mapper = AddressMapper(SystemConfig())
    decoded = mapper.decode(address)
    assert mapper.encode(decoded) == address % mapper.total_lines


# ---------------------------------------------------------------------------
# bisection
# ---------------------------------------------------------------------------
@given(st.integers(min_value=1, max_value=100_000))
@settings(max_examples=60)
def test_bisection_bracket(true_threshold):
    found = bisect_threshold(lambda hc: int(hc >= true_threshold))
    assert found is not None
    assert true_threshold <= found <= min(true_threshold + 1_000, 100_000)


# ---------------------------------------------------------------------------
# box stats
# ---------------------------------------------------------------------------
@given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False), min_size=1, max_size=100))
def test_boxstats_ordering(values):
    stats = BoxStats.from_values(values)
    assert (stats.minimum <= stats.q1 <= stats.median
            <= stats.q3 <= stats.maximum)
    assert stats.minimum == min(values)
    assert stats.maximum == max(values)


# ---------------------------------------------------------------------------
# charge model
# ---------------------------------------------------------------------------
@given(st.sampled_from(["H5", "H8", "M2", "M5", "S1", "S6", "S13"]),
       st.floats(min_value=0.18, max_value=1.0, allow_nan=False),
       st.integers(min_value=1, max_value=15_000))
@settings(max_examples=80)
def test_charge_ratio_bounded(module_id, factor, n_pr):
    charge = ChargeModel(module_spec(module_id))
    ratio = charge.nrh_ratio(factor, n_pr)
    assert 0.0 <= ratio <= 1.3
    assert math.isfinite(ratio)


@given(st.sampled_from(["H5", "M2", "S6"]),
       st.floats(min_value=0.18, max_value=1.0, allow_nan=False),
       st.integers(min_value=1, max_value=5_000),
       st.floats(min_value=64e6, max_value=2e9))
@settings(max_examples=80)
def test_retention_fraction_bounded_and_monotone_in_wait(
        module_id, factor, n_pr, wait_ns):
    charge = ChargeModel(module_spec(module_id))
    fraction = charge.retention_fail_fraction(factor, n_pr, wait_ns)
    longer = charge.retention_fail_fraction(factor, n_pr, wait_ns * 2)
    assert 0.0 <= fraction <= 1.0
    assert longer >= fraction - 1e-12


@given(st.sampled_from(["H5", "M2", "S6", "S1"]),
       st.floats(min_value=0.18, max_value=0.99, allow_nan=False))
@settings(max_examples=60)
def test_npcr_limit_consistent_with_retention(module_id, factor):
    # A row held exactly at the limit must survive a 64 ms window; one past
    # it must not (for the weakest row).
    charge = ChargeModel(module_spec(module_id))
    limit = charge.npcr_limit(factor)
    if 1 <= limit <= 100_000:
        assert not charge.retention_fails(factor, limit, row_strength=1.0)
        assert charge.retention_fails(factor, limit + 1, row_strength=1.0)


# ---------------------------------------------------------------------------
# t_FCRI
# ---------------------------------------------------------------------------
@given(st.integers(min_value=1, max_value=100_000),
       st.floats(min_value=1.0, max_value=33.0, allow_nan=False),
       st.integers(min_value=1, max_value=15_000))
def test_tfcri_monotone(nrh, tras, npcr):
    base = full_charge_restoration_interval_ns(nrh, tras, npcr)
    assert base > 0
    assert full_charge_restoration_interval_ns(nrh + 1, tras, npcr) > base
    assert full_charge_restoration_interval_ns(nrh, tras, npcr + 1) > base


# ---------------------------------------------------------------------------
# FR bit vector
# ---------------------------------------------------------------------------
# ---------------------------------------------------------------------------
# ECC codec
# ---------------------------------------------------------------------------
@given(st.integers(min_value=0, max_value=(1 << 64) - 1))
@settings(max_examples=60)
def test_ecc_round_trip_clean(word):
    from repro.dram.ecc import decode, encode
    result = decode(encode(word))
    assert result.data == word and result.clean


@given(st.integers(min_value=0, max_value=(1 << 64) - 1),
       st.integers(min_value=0, max_value=71))
@settings(max_examples=60)
def test_ecc_corrects_any_single_flip(word, position):
    from repro.dram.ecc import decode, encode
    result = decode(encode(word) ^ (1 << position))
    assert result.data == word
    assert result.corrected and not result.detected_uncorrectable


@given(st.integers(min_value=0, max_value=(1 << 64) - 1),
       st.integers(min_value=0, max_value=71),
       st.integers(min_value=0, max_value=71))
@settings(max_examples=60)
def test_ecc_never_miscorrects_double_flips(word, a, b):
    from repro.dram.ecc import decode, encode
    if a == b:
        return
    result = decode(encode(word) ^ (1 << a) ^ (1 << b))
    assert result.detected_uncorrectable
    assert not result.corrected


# ---------------------------------------------------------------------------
# SPD records
# ---------------------------------------------------------------------------
@given(st.lists(st.tuples(
    st.sampled_from([0.81, 0.64, 0.45, 0.36, 0.27, 0.18]),
    st.integers(min_value=1, max_value=100_000),
    st.integers(min_value=1, max_value=15_000)),
    min_size=1, max_size=6))
@settings(max_examples=40)
def test_spd_round_trip_arbitrary_entries(raw_entries):
    from repro.core.spd import SpdEntry, SpdRecord
    record = SpdRecord(module_id="X1", entries=tuple(
        SpdEntry(*entry) for entry in raw_entries))
    assert SpdRecord.decode(record.encode()) == record


# ---------------------------------------------------------------------------
# RowPress
# ---------------------------------------------------------------------------
@given(st.floats(min_value=1.0, max_value=5e7, allow_nan=False))
@settings(max_examples=60)
def test_press_amplification_at_least_one(t_on):
    from repro.dram.rowpress import press_amplification
    assert press_amplification(t_on) >= 1.0


@given(st.floats(min_value=36.0, max_value=1e7, allow_nan=False),
       st.floats(min_value=1.0, max_value=3.0, allow_nan=False))
@settings(max_examples=60)
def test_press_amplification_monotone(t_on, scale):
    from repro.dram.rowpress import press_amplification
    assert press_amplification(t_on * scale) >= press_amplification(t_on)


@given(st.lists(st.tuples(st.integers(min_value=0, max_value=3),
                          st.integers(min_value=0, max_value=63)),
                max_size=100))
def test_fr_bitvector_state_machine(operations):
    fr = FRBitVector(4, 64)
    restored = set()
    for bank, row in operations:
        assert fr.needs_full_restoration(bank, row) == \
            ((bank, row) not in restored)
        fr.mark_fully_restored(bank, row)
        restored.add((bank, row))
    fr.reset_all()
    assert fr.fraction_in_f_state() == 1.0
