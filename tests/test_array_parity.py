"""The array tier reproduces every figure and sweep row bit-exactly.

The device-stage figure builders (fig6/8/9) resolve their kernel through
the process-default execution policy, so they are compared under
``kernel_policy="scalar"`` vs. ``"array"``; the sim-stage builders
(fig17/18/19) take ``sim_kernel`` directly.  The CLI sweep's persisted
JSON rows must be byte-identical between ``--kernel-policy scalar`` and
``--kernel-policy array``.  No tolerances anywhere: the array tier ships
only because it changes nothing.
"""

import pytest

from repro.analysis.figures import (
    fig6_nrh_boxes,
    fig8_row_scatter,
    fig9_ber_boxes,
    fig17_18_performance_energy,
    fig19_periodic,
)
from repro.cli import main
from repro.exec import ExecutionPolicy, set_default_policy
from repro.exec.parity import assert_parity
from repro.runtime import REPORT_NAME

#: Small grids: enough rows/points to exercise every kernel path, small
#: enough that the whole module stays CI-fast.
_DEVICE_BUILDERS = {
    "fig6": lambda: fig6_nrh_boxes(("H5",), tras_factors=(0.45, 0.27),
                                   per_region=6, seed=11),
    "fig8": lambda: fig8_row_scatter(("H5",), reduced_factor=0.45,
                                     per_region=8, seed=11),
    "fig9": lambda: fig9_ber_boxes(("S6",), tras_factors=(0.45,),
                                   per_region=6, seed=11),
}


@pytest.mark.parametrize("figure", sorted(_DEVICE_BUILDERS))
def test_device_figures_identical_under_array_policy(figure):
    build = _DEVICE_BUILDERS[figure]

    def under(policy):
        set_default_policy(ExecutionPolicy(kernel_policy=policy))
        return build()

    assert_parity(lambda: under("scalar"), lambda: under("array"),
                  label=f"{figure} under the array policy")


@pytest.mark.parametrize("sim_kernel", ("batched", "array"))
def test_fig17_18_identical_across_sim_kernels(sim_kernel):
    kw = dict(mitigations=("PARA",), vendors=("H",), nrh_values=(64,),
              workloads=("spec06.mcf",), requests=300)
    assert_parity(
        lambda: fig17_18_performance_energy(sim_kernel="scalar", **kw),
        lambda: fig17_18_performance_energy(sim_kernel=sim_kernel, **kw),
        label=f"fig17/18 under the {sim_kernel} kernel")


@pytest.mark.parametrize("sim_kernel", ("batched", "array"))
def test_fig19_identical_across_sim_kernels(sim_kernel):
    kw = dict(densities_gbit=(8,), latency_factors=(1.00, 0.36),
              requests=300)
    assert_parity(
        lambda: fig19_periodic(sim_kernel="scalar", **kw),
        lambda: fig19_periodic(sim_kernel=sim_kernel, **kw),
        label=f"fig19 under the {sim_kernel} kernel")


def test_cli_sweep_rows_byte_identical(tmp_path):
    def sweep(policy):
        out = tmp_path / policy
        assert main(["sweep", "--dir", str(out), "--jobs", "1",
                     "--mitigations", "Graphene,PARA", "--nrh", "128",
                     "--requests", "300", "--kernel-policy", policy]) == 0
        rows = {p.name: p.read_bytes() for p in sorted(out.glob("*.json"))
                if p.name != REPORT_NAME}  # run metadata, not a result row
        assert rows
        return rows

    assert sweep("scalar") == sweep("array")
