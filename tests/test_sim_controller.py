"""Tests for the FR-FCFS memory controller."""

import pytest

from repro.mitigations.base import (
    MetadataAccess,
    MitigationMechanism,
    PreventiveRefresh,
    RfmCommand,
)
from repro.sim.addrmap import AddressMapper
from repro.sim.config import SystemConfig
from repro.sim.controller import MemoryController, RefreshLatencyPolicy
from repro.sim.request import Request, RequestType


def make_request(mapper, line, *, core=0, arrival=0.0, write=False,
                 position=0) -> Request:
    decoded = mapper.decode(line)
    return Request(core=core, address=line,
                   type=RequestType.WRITE if write else RequestType.READ,
                   arrival_ns=arrival, decoded=decoded, position=position)


@pytest.fixture()
def config() -> SystemConfig:
    return SystemConfig(num_cores=1)


@pytest.fixture()
def mapper(config) -> AddressMapper:
    return AddressMapper(config)


class TestScheduling:
    def test_services_arrived_request(self, config, mapper):
        controller = MemoryController(config)
        controller.enqueue(make_request(mapper, 100, arrival=0.0))
        request = controller.service_one()
        assert request is not None
        assert request.completion_ns > 0

    def test_future_request_not_serviced(self, config, mapper):
        controller = MemoryController(config)
        controller.enqueue(make_request(mapper, 100, arrival=1e6))
        assert controller.service_one() is None
        assert controller.next_arrival_ns() == 1e6

    def test_row_hit_faster_than_miss(self, config, mapper):
        controller = MemoryController(config)
        controller.enqueue(make_request(mapper, 0, arrival=0.0))
        first = controller.service_one()
        controller.enqueue(make_request(mapper, 1, arrival=0.0))  # same row
        hit = controller.service_one()
        assert controller.stats.row_hits == 1
        # The hit completes shortly after the miss: no ACT is needed.
        assert (hit.completion_ns - first.completion_ns) < \
            (first.completion_ns - first.arrival_ns)

    def test_frfcfs_prefers_row_hit(self, config, mapper):
        controller = MemoryController(config)
        controller.enqueue(make_request(mapper, 0, arrival=0.0))
        controller.service_one()  # opens row of line 0
        older_miss = make_request(mapper, 1 << 16, arrival=1.0)
        newer_hit = make_request(mapper, 1, arrival=2.0)
        controller.enqueue(older_miss)
        controller.enqueue(newer_hit)
        controller.advance_to(5.0)
        served = controller.service_one()
        assert served is newer_hit  # hit-first despite being younger

    def test_writes_buffered_until_watermark(self, config, mapper):
        controller = MemoryController(config)
        # One write + one read, both arrived: read wins (no drain mode).
        write = make_request(mapper, 500, write=True)
        read = make_request(mapper, 900)
        controller.enqueue(write)
        controller.enqueue(read)
        assert controller.service_one() is read

    def test_write_drain_when_only_writes(self, config, mapper):
        controller = MemoryController(config)
        write = make_request(mapper, 500, write=True)
        controller.enqueue(write)
        assert controller.service_one() is write

    def test_completion_monotone_on_same_bank(self, config, mapper):
        controller = MemoryController(config)
        completions = []
        for i in range(8):
            controller.enqueue(make_request(mapper, i * (1 << 16)))
        for _ in range(8):
            request = controller.service_one()
            completions.append(request.completion_ns)
        assert all(a < b for a, b in zip(completions, completions[1:]))


class TestWriteForwarding:
    def test_read_after_write_forwards(self, config, mapper):
        controller = MemoryController(config)
        write = make_request(mapper, 700, write=True, arrival=0.0)
        read = make_request(mapper, 700, arrival=5.0)
        controller.enqueue(write)
        controller.enqueue(read)
        controller.advance_to(5.0)
        served = controller.service_one()
        assert served is read
        assert controller.stats.forwarded_reads == 1
        assert served.completion_ns == pytest.approx(
            5.0 + MemoryController.FORWARD_LATENCY_NS)

    def test_read_before_write_not_forwarded(self, config, mapper):
        controller = MemoryController(config)
        read = make_request(mapper, 700, arrival=0.0)
        write = make_request(mapper, 700, write=True, arrival=5.0)
        controller.enqueue(read)
        controller.enqueue(write)
        controller.service_one()
        assert controller.stats.forwarded_reads == 0

    def test_different_address_not_forwarded(self, config, mapper):
        controller = MemoryController(config)
        controller.enqueue(make_request(mapper, 700, write=True))
        controller.enqueue(make_request(mapper, 701))
        controller.advance_to(1.0)
        controller.service_one()
        assert controller.stats.forwarded_reads == 0


class TestPeriodicRefresh:
    def test_refreshes_applied_over_time(self, config, mapper):
        controller = MemoryController(config)
        controller.advance_to(100_000.0)  # > tREFI = 3.9 us
        controller.enqueue(make_request(mapper, 0, arrival=100_000.0))
        controller.service_one()
        assert controller.stats.periodic_refreshes >= 2 * 25  # 2 ranks

    def test_refresh_blocks_bank(self, config, mapper):
        controller = MemoryController(config)
        request = make_request(mapper, 0, arrival=config.timing.tREFI)
        controller.advance_to(config.timing.tREFI)
        controller.enqueue(request)
        controller.service_one()
        # Completion must be after refresh end (tREFI + tRFC).
        assert request.completion_ns > config.timing.tREFI + config.timing.tRFC


class _OneShot(MitigationMechanism):
    """Emits a fixed action list on the first activation."""

    name = "OneShot"

    def __init__(self, actions):
        super().__init__(nrh=100)
        self._actions = list(actions)

    def on_activation(self, flat_bank, row, now_ns):
        actions, self._actions = self._actions, []
        return actions


class TestMitigationActions:
    def test_preventive_refresh_blocks_and_counts(self, config, mapper):
        mech = _OneShot([PreventiveRefresh(0, 100)])
        controller = MemoryController(config, mitigation=mech)
        controller.enqueue(make_request(mapper, 0))
        controller.service_one()
        assert controller.stats.preventive_refresh_rows == 4
        assert controller.banks[0].preventive_busy_ns > 0

    def test_preventive_refresh_edge_rows_clipped(self, config, mapper):
        mech = _OneShot([PreventiveRefresh(0, 0)])
        controller = MemoryController(config, mitigation=mech)
        controller.enqueue(make_request(mapper, 0))
        controller.service_one()
        assert controller.stats.preventive_refresh_rows == 2  # only +1, +2

    def test_rfm_counts(self, config, mapper):
        mech = _OneShot([RfmCommand(0, is_backoff=True)])
        controller = MemoryController(config, mitigation=mech)
        controller.enqueue(make_request(mapper, 0))
        controller.service_one()
        assert controller.stats.rfm_commands == 1
        assert controller.stats.backoff_events == 1

    def test_metadata_access_counts(self, config, mapper):
        mech = _OneShot([MetadataAccess(0, reads=2, writes=1)])
        controller = MemoryController(config, mitigation=mech)
        controller.enqueue(make_request(mapper, 0))
        controller.service_one()
        assert controller.stats.metadata_reads == 2
        assert controller.stats.metadata_writes == 1

    def test_policy_reduced_latency_recorded(self, config, mapper):
        class Reduced(RefreshLatencyPolicy):
            def preventive_tras_ns(self, flat_bank, row, now_ns):
                return self.config.timing.tRAS * 0.36, False

        mech = _OneShot([PreventiveRefresh(0, 100)])
        controller = MemoryController(config, mitigation=mech,
                                      policy=Reduced(config))
        controller.enqueue(make_request(mapper, 0))
        controller.service_one()
        assert controller.stats.preventive_refresh_partial == 4
        assert controller.stats.preventive_refresh_full == 0

    def test_reduced_latency_blocks_bank_less(self, config, mapper):
        def busy_with(policy):
            mech = _OneShot([PreventiveRefresh(0, 100)])
            controller = MemoryController(config, mitigation=mech,
                                          policy=policy)
            controller.enqueue(make_request(mapper, 0))
            controller.service_one()
            return controller.banks[0].preventive_busy_ns

        class Reduced(RefreshLatencyPolicy):
            def preventive_tras_ns(self, flat_bank, row, now_ns):
                return self.config.timing.tRAS * 0.36, False

        assert busy_with(Reduced(config)) < busy_with(None)


class TestBusyFraction:
    def test_zero_without_mitigation(self, config, mapper):
        controller = MemoryController(config)
        controller.enqueue(make_request(mapper, 0))
        controller.service_one()
        assert controller.preventive_busy_fraction(1e6) == 0.0

    def test_invalid_elapsed_rejected(self, config):
        controller = MemoryController(config)
        with pytest.raises(Exception):
            controller.preventive_busy_fraction(0.0)
