"""Tests for Half-Double characterization (§6)."""

import pytest

from repro.characterization.halfdouble import (
    HalfDoubleResult,
    halfdouble_row_fraction,
    perform_halfdouble,
)
from repro.errors import CharacterizationError


class TestPerformHalfDouble:
    def test_s_modules_never_flip(self, host_s6):
        flips = perform_halfdouble(host_s6, 0, 100,
                                   tras_red_ns=33.0, n_pr=1)
        assert flips == 0

    def test_h_vulnerable_rows_flip(self, host_h5):
        module = host_h5.module
        flipped = 0
        for victim in range(10, 200):
            if module.mapping.logical_to_physical(victim) + 2 >= \
                    module.mapping.rows_per_bank:
                continue
            flips = perform_halfdouble(host_h5, 0, victim,
                                       tras_red_ns=33.0, n_pr=1)
            if flips:
                flipped += 1
        assert flipped > 0

    def test_requires_room_for_far_aggressor(self, host_h5):
        last = host_h5.module.mapping.rows_per_bank - 1
        with pytest.raises(CharacterizationError):
            perform_halfdouble(host_h5, 0, last, tras_red_ns=33.0, n_pr=1)

    def test_few_far_hammers_do_not_flip(self, host_h5):
        # Below the Half-Double far-dose threshold nothing happens.
        for victim in range(10, 60):
            flips = perform_halfdouble(host_h5, 0, victim,
                                       tras_red_ns=33.0, n_pr=1,
                                       far_hammers=1_000, near_hammers=50)
            assert flips == 0


class TestRowFraction:
    def test_h_fraction_positive_s_zero(self):
        h = halfdouble_row_fraction("H7", tras_factor=1.0, per_region=48)
        s = halfdouble_row_fraction("S6", tras_factor=1.0, per_region=48)
        assert h.fraction > 0.0
        assert s.fraction == 0.0

    def test_fraction_dips_at_036(self):
        # Fig. 13: prevalence decreases (~39 %) at 0.36 tRAS.
        nominal = halfdouble_row_fraction("H7", tras_factor=1.0,
                                          per_region=96)
        reduced = halfdouble_row_fraction("H7", tras_factor=0.36,
                                          per_region=96)
        assert reduced.fraction < nominal.fraction

    def test_fraction_spikes_at_018(self):
        # Fig. 13: sharp increase from 0.36 to 0.18 tRAS.
        at_036 = halfdouble_row_fraction("H7", tras_factor=0.36,
                                         per_region=96)
        at_018 = halfdouble_row_fraction("H7", tras_factor=0.18,
                                         per_region=96)
        assert at_018.fraction > at_036.fraction

    def test_restoration_count_weak_effect(self):
        # Fig. 13 obs. 4: 1x vs 5x restorations changes little.
        once = halfdouble_row_fraction("H7", tras_factor=0.36, n_pr=1,
                                       per_region=96)
        five = halfdouble_row_fraction("H7", tras_factor=0.36, n_pr=5,
                                       per_region=96)
        assert abs(once.fraction - five.fraction) < 0.05

    def test_empty_result_raises(self):
        result = HalfDoubleResult("H7", 1.0, 1, 0, 0)
        with pytest.raises(CharacterizationError):
            _ = result.fraction
