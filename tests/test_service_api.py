"""The service wire surface: TCP endpoint, client, and CLI job verbs.

End-to-end over a real loopback socket: submit/status/stream/results/
figure/stop frames, wire-level dedup, hostile-client rejection (bad
protocol, unknown verbs, malformed ids), queue recovery after a service
restart, and the ``job`` CLI verbs driving all of it in-process — with
fetched bytes compared against a direct batch run of the same spec.
"""

import socket
import threading
import time

import pytest

from repro.analysis.sweeprunner import (
    SweepGrid,
    SweepRunner,
    load_row,
    render_aggregate,
)
from repro.cli import main
from repro.errors import ConfigError
from repro.runtime.wire import (
    PROTOCOL_VERSION,
    recv_frame,
    send_frame,
)
from repro.service import DONE, QUEUED, JobManager, JobSpec, RunOptions
from repro.service.api import SERVICE_NAME, CharacterizationService
from repro.service.client import ServiceClient


def tiny_grid(**overrides) -> SweepGrid:
    options = dict(mitigations=("PARA",), nrh_values=(64,),
                   pacram_vendors=(None,),
                   workload_sets=(("spec06.mcf",),), requests=200)
    options.update(overrides)
    return SweepGrid(**options)


def batch_rows(directory, grid) -> dict[str, bytes]:
    runner = SweepRunner(directory, grid)
    runner.run(jobs=1)
    return {p.name: p.read_bytes()
            for p in sorted(directory.glob("*.json"))
            if p.name != "run_report.json"}


def wait_terminal(client: ServiceClient, job_id: str,
                  timeout_s: float = 120.0) -> dict:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        frame = client.status(job_id)
        if frame["state"] in ("done", "failed"):
            return frame
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} never reached a terminal state")


@pytest.fixture
def service(tmp_path):
    svc = CharacterizationService(tmp_path / "jobs",
                                  options=RunOptions(jobs=1),
                                  poll_s=0.01)
    svc.start()
    yield svc
    svc.stop()


def address(svc: CharacterizationService) -> str:
    host, port = svc.bound_address
    return f"{host}:{port}"


# ----------------------------------------------------------------------
# happy path over the wire
# ----------------------------------------------------------------------
class TestServiceEndToEnd:
    def test_submit_stream_results_figure(self, service, tmp_path):
        grid = tiny_grid()
        expected = batch_rows(tmp_path / "batch", grid)
        batch = SweepRunner(tmp_path / "batch", grid)
        expected_figure = render_aggregate(batch.aggregate(
            [load_row(batch.row_path(p)) for p in grid.points()]))

        with ServiceClient(address(service)) as client:
            assert client.service == SERVICE_NAME
            frame = client.submit(JobSpec("sweep", grid))
            assert frame["job_id"] == JobSpec("sweep", grid).job_id
            assert frame["deduped"] is False
            assert frame["state"] == QUEUED

            events = []
            end = client.stream(frame["job_id"], on_event=events.append)
            assert end["state"] == DONE
            assert end["error"] is None
            assert [e["seq"] for e in events] == list(range(len(events)))
            assert events[0]["event"] == "start"
            assert events[-1]["event"] == "finish"

            assert client.results(frame["job_id"]) == expected
            assert client.figure(frame["job_id"], "fig17") \
                == expected_figure

    def test_wire_dedup_returns_the_same_job(self, service):
        grid = tiny_grid()
        with ServiceClient(address(service)) as client:
            first = client.submit(JobSpec("sweep", grid))
            wait_terminal(client, first["job_id"])
            again = client.submit(JobSpec("sweep", grid))
        assert again["job_id"] == first["job_id"]
        assert again["deduped"] is True
        assert again["state"] == DONE
        assert again["position"] is None  # done: nothing re-enqueued

    def test_stream_of_a_finished_job_replays_the_full_log(self, service):
        grid = tiny_grid()
        with ServiceClient(address(service)) as client:
            frame = client.submit(JobSpec("sweep", grid))
            wait_terminal(client, frame["job_id"])
            events = []
            end = client.stream(frame["job_id"], on_event=events.append)
        assert end["state"] == DONE
        assert [e["event"] for e in events][0] == "start"
        assert [e["event"] for e in events][-1] == "finish"

    def test_fetch_writes_the_result_files(self, service, tmp_path):
        grid = tiny_grid()
        expected = batch_rows(tmp_path / "batch", grid)
        dest = tmp_path / "fetched"
        with ServiceClient(address(service)) as client:
            frame = client.submit(JobSpec("sweep", grid))
            wait_terminal(client, frame["job_id"])
            written = client.fetch(frame["job_id"], dest)
        assert {p.name: p.read_bytes() for p in written} == expected

    def test_fetch_refuses_traversal_names(self, service, tmp_path):
        with ServiceClient(address(service)) as client:
            client.results = lambda job_id: {"../evil": b"x"}
            with pytest.raises(ConfigError, match="illegal result file"):
                client.fetch("0" * 16, tmp_path / "fetched")

    def test_stop_verb_shuts_the_service_down(self, service):
        with ServiceClient(address(service)) as client:
            client.stop_service()
        service._runner.join(timeout=10.0)
        service._acceptor.join(timeout=10.0)
        assert not service._runner.is_alive()
        assert not service._acceptor.is_alive()
        with pytest.raises(ConfigError, match="could not connect"):
            ServiceClient(address(service), connect_timeout_s=0.2)

    def test_restart_recovers_queued_jobs(self, tmp_path):
        # A job submitted to the store while no service runs (or left
        # behind by a crashed one) is picked up on the next start.
        grid = tiny_grid()
        manager = JobManager(tmp_path / "jobs")
        record, _ = manager.submit(JobSpec("sweep", grid))
        assert record.state == QUEUED

        svc = CharacterizationService(tmp_path / "jobs",
                                      options=RunOptions(jobs=1),
                                      poll_s=0.01)
        svc.start()
        try:
            with ServiceClient(address(svc)) as client:
                final = wait_terminal(client, record.job_id)
            assert final["state"] == DONE
        finally:
            svc.stop()


# ----------------------------------------------------------------------
# hostile and confused clients
# ----------------------------------------------------------------------
class TestServiceRejections:
    def test_unknown_job_id(self, service):
        with ServiceClient(address(service)) as client:
            with pytest.raises(ConfigError, match="unknown job"):
                client.status("0123456789abcdef")

    def test_malformed_job_id_never_touches_the_filesystem(self, service):
        with ServiceClient(address(service)) as client:
            with pytest.raises(ConfigError, match="malformed job id"):
                client.status("../../etc/passwd")

    def test_stream_of_unknown_job_errors(self, service):
        with ServiceClient(address(service)) as client:
            with pytest.raises(ConfigError, match="unknown job"):
                client.stream("0123456789abcdef")

    def test_figure_for_queued_job_errors(self, service):
        # Submit against a saturated queue position is racy; use a spec
        # the runner has not reached yet by asking before it can finish.
        with ServiceClient(address(service)) as client:
            frame = client.submit(JobSpec("sweep", tiny_grid()))
            try:
                client.figure(frame["job_id"], "fig17")
            except ConfigError as error:
                assert "not done" in str(error)
            else:  # the tiny job may already have finished: still gated
                wait_terminal(client, frame["job_id"])
                with pytest.raises(ConfigError, match="render"):
                    client.figure(frame["job_id"], "fig6")

    def test_disallowed_spec_type_rejected_at_the_wire(self, service):
        payload = JobSpec("sweep", tiny_grid()).encoded()
        payload["config"]["__dc"] = "os:system"
        sock = socket.create_connection(service.bound_address)
        try:
            send_frame(sock, {"type": "hello",
                              "protocol": PROTOCOL_VERSION})
            assert recv_frame(sock)["type"] == "hello"
            send_frame(sock, {"type": "submit", "spec": payload})
            reply = recv_frame(sock)
        finally:
            sock.close()
        assert reply["type"] == "error"
        assert "disallowed type" in reply["error"]

    def test_unknown_verb_errors(self, service):
        sock = socket.create_connection(service.bound_address)
        try:
            send_frame(sock, {"type": "hello",
                              "protocol": PROTOCOL_VERSION})
            assert recv_frame(sock)["type"] == "hello"
            send_frame(sock, {"type": "sabotage"})
            reply = recv_frame(sock)
        finally:
            sock.close()
        assert reply["type"] == "error"
        assert "unknown verb" in reply["error"]

    def test_wrong_protocol_version_rejected(self, service):
        sock = socket.create_connection(service.bound_address)
        try:
            send_frame(sock, {"type": "hello", "protocol": 999})
            reply = recv_frame(sock)
        finally:
            sock.close()
        assert reply["type"] == "error"
        assert "upgrade the client" in reply["error"]

    def test_client_rejects_a_non_service_endpoint(self):
        # A listener that answers the hello with a non-hello frame.
        server = socket.create_server(("127.0.0.1", 0))
        host, port = server.getsockname()[:2]

        def imposter():
            conn, _ = server.accept()
            with conn:
                recv_frame(conn)
                send_frame(conn, {"type": "ok"})

        thread = threading.Thread(target=imposter, daemon=True)
        thread.start()
        try:
            with pytest.raises(ConfigError, match="service hello"):
                ServiceClient((host, port), connect_timeout_s=2.0)
        finally:
            thread.join(timeout=5.0)
            server.close()


# ----------------------------------------------------------------------
# fleet scheduler behind the service
# ----------------------------------------------------------------------
class TestServiceFleet:
    def test_fleet_results_match_the_local_batch_bytes(self, tmp_path):
        grid = tiny_grid()
        expected = batch_rows(tmp_path / "batch", grid)
        svc = CharacterizationService(
            tmp_path / "jobs",
            options=RunOptions(scheduler="fleet", workers=2,
                               lease_batch=1),
            poll_s=0.01)
        svc.start()
        try:
            with ServiceClient(address(svc)) as client:
                frame = client.submit(JobSpec("sweep", grid))
                end = client.stream(frame["job_id"])
                assert end["state"] == DONE
                assert client.results(frame["job_id"]) == expected
        finally:
            svc.stop()


# ----------------------------------------------------------------------
# the job CLI verbs, in-process
# ----------------------------------------------------------------------
class TestJobCli:
    def test_submit_watch_fetch_match_the_batch_cli(self, service,
                                                    tmp_path, capsys):
        connect = ["--connect", address(service)]
        spec = ["--mitigations", "PARA", "--nrh", "64",
                "--requests", "200"]
        batch_dir = tmp_path / "batch"
        assert main(["sweep", "--dir", str(batch_dir), "--jobs", "1",
                     *spec]) == 0
        capsys.readouterr()

        assert main(["job", "submit", "sweep", *connect, *spec]) == 0
        out = capsys.readouterr().out
        job_id, rest = out.split()[0], out
        assert "state=" in rest

        assert main(["job", "watch", job_id, *connect]) == 0
        assert f"{job_id} state=done" in capsys.readouterr().out

        assert main(["job", "status", job_id, *connect]) == 0
        assert "state=done" in capsys.readouterr().out

        dest = tmp_path / "fetched"
        assert main(["job", "fetch", job_id, *connect,
                     "--dest", str(dest)]) == 0
        assert "fetched" in capsys.readouterr().out
        expected = {p.name: p.read_bytes()
                    for p in sorted(batch_dir.glob("*.json"))
                    if p.name != "run_report.json"}
        assert {p.name: p.read_bytes()
                for p in sorted(dest.iterdir())} == expected

        # Figure-on-demand renders the exact aggregate the batch CLI
        # printed for the same grid.
        assert main(["job", "fetch", job_id, *connect,
                     "--figure", "fig17"]) == 0
        figure = capsys.readouterr().out.rstrip("\n")
        runner = SweepRunner(batch_dir, tiny_grid(
            mitigations=("PARA",), nrh_values=(64,),
            pacram_vendors=(None, "H", "M", "S"), requests=200))
        grid = runner.grid
        expected_figure = render_aggregate(runner.aggregate(
            [load_row(runner.row_path(p)) for p in grid.points()]))
        assert figure == expected_figure

        # Resubmission over the CLI dedups to the same id.
        assert main(["job", "submit", "sweep", *connect, *spec]) == 0
        out = capsys.readouterr().out
        assert out.split()[0] == job_id
        assert "deduped=true" in out

    def test_watch_reports_failure_with_exit_one(self, service, capsys):
        # An unknown job errors cleanly through the CLI error path.
        assert main(["job", "status", "0123456789abcdef",
                     "--connect", address(service)]) == 1
        assert "unknown job" in capsys.readouterr().err

    def test_connect_timeout_flag_bounds_the_retry(self, capsys):
        sink = socket.socket()
        sink.bind(("127.0.0.1", 0))  # bound, never listening
        host, port = sink.getsockname()[:2]
        try:
            code = main(["job", "status", "0123456789abcdef",
                         "--connect", f"{host}:{port}",
                         "--connect-timeout", "0.3"])
        finally:
            sink.close()
        assert code == 1
        assert "could not connect" in capsys.readouterr().err
