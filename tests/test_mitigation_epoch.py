"""Epoch (batch) mitigation dispatch: contracts, aliasing, rng streams.

Covers the deterministic side of the ``on_activation_epoch`` protocol:

* the shared ``_NO_ACTIONS`` no-op result is immutable, so a caller that
  mutates a "fresh" result gets a hard error instead of silently
  replaying the appended action on every later activation;
* ``BatchedPARA``'s single refill site keeps the rng stream identical to
  scalar PARA across buffer-refill boundaries, in both per-activation
  and epoch dispatch;
* the column opt-out flags (``epoch_needs_rows`` / ``epoch_needs_times``)
  let the kernel drop columns the mechanism never reads, while the base
  sequential-replay fallback still rejects a genuinely missing column;
* a deterministic scalar-vs-epoch parity sweep over every mechanism,
  checking actions, counters, rng state, and internal table state
  (the random/adversarial version lives in
  ``test_property_mitigation_epoch.py``).
"""

import random

import pytest

from repro.errors import SimulationError
from repro.mitigations import make_mitigation
from repro.mitigations.batched import _NO_ACTIONS, DRAW_BLOCK, BatchedPARA
from repro.mitigations.para import PARA
from repro.mitigations.rfm import RFM
from repro.sim.config import SystemConfig

CONFIG = SystemConfig()
ALL_MECHANISMS = ("None", "PARA", "Graphene", "Hydra", "RFM", "PRAC")


def snapshot_state(mech):
    """Deep-copy every piece of mutable mechanism state worth comparing."""
    out = {}
    for attr in ("_raa", "_counts", "_gct_flat", "_rcc_flat", "_rct_flat",
                 "_buffer_pos", "_raa_max", "_max_count", "_gct_max",
                 "_bank_max"):
        if hasattr(mech, attr):
            value = getattr(mech, attr)
            if hasattr(value, "items"):
                out[attr] = list(value.items())
            elif isinstance(value, list):
                out[attr] = list(value)
            else:
                out[attr] = value
    if hasattr(mech, "_table_list"):
        out["tables"] = [
            None if t is None else (list(t.counts.items()), t.spillover)
            for t in mech._table_list]
    if hasattr(mech, "_tables"):
        out["tables"] = {key: (list(t.counts.items()), t.spillover)
                         for key, t in mech._tables.items()}
    return out


def run_scalar(mech, trace):
    """Drive per-activation dispatch; return [(index, actions), ...]."""
    out = []
    for index, (flat_bank, row, now_ns) in enumerate(trace):
        actions = mech.on_activation(flat_bank, row, now_ns)
        if actions:
            out.append((index, list(actions)))
    return out


def run_epoch(mech, trace, rnd):
    """Drive epoch dispatch the way the array kernel does.

    Buffers up to ``epoch_credit()`` activations (sometimes fewer, to
    vary boundary placement), flushes them through
    ``on_activation_epoch``, and takes the boundary activation through
    the scalar step — asserting the credited epochs never act.
    """
    out = []
    index = 0
    needs_trace = mech.epoch_needs_trace
    needs_rows = needs_trace and mech.epoch_needs_rows
    needs_times = needs_trace and mech.epoch_needs_times
    while index < len(trace):
        credit = mech.epoch_credit()
        n = min(credit, len(trace) - index)
        if n > 1 and rnd.random() < 0.2:
            n = rnd.randrange(1, n)
        if n > 0:
            segment = trace[index:index + n]
            if needs_trace:
                triggers, actions = mech.on_activation_epoch(
                    [x[0] for x in segment],
                    [x[1] for x in segment] if needs_rows else None,
                    [x[2] for x in segment] if needs_times else None)
            else:
                triggers, actions = mech.on_activation_epoch(
                    None, None, None, count=n)
            assert not triggers and not actions, \
                "mechanism acted inside its credited epoch"
            index += n
            if index >= len(trace):
                break
        flat_bank, row, now_ns = trace[index]
        actions = mech.on_activation(flat_bank, row, now_ns)
        if actions:
            out.append((index, list(actions)))
        index += 1
    return out


def make_trace(rnd, length):
    trace = []
    now_ns = 0.0
    hot = [(rnd.randrange(4), rnd.randrange(256)) for _ in range(3)]
    for _ in range(length):
        if rnd.random() < 0.5:
            flat_bank, row = rnd.choice(hot)
        else:
            flat_bank, row = rnd.randrange(4), rnd.randrange(4096)
        now_ns += rnd.random() * 10
        trace.append((flat_bank, row, now_ns))
    return trace


class TestNoActionsAliasing:
    def test_no_actions_is_immutable_tuple(self):
        assert isinstance(_NO_ACTIONS, tuple)
        assert _NO_ACTIONS == ()
        with pytest.raises(AttributeError):
            _NO_ACTIONS.append("boom")

    def test_caller_mutation_cannot_alias_across_activations(self):
        """The regression the tuple prevents: a caller appending to one
        activation's "fresh" no-action result must not see (or cause)
        the action replaying on every later activation."""
        mech = make_mitigation("PARA", nrh=1 << 20, batched=True,
                               config=CONFIG)
        first = mech.on_activation(0, 1, 0.0)
        assert not first
        with pytest.raises(AttributeError):
            first.append("injected")
        # Every later no-action result is still empty.
        for _ in range(16):
            assert not mech.on_activation(0, 1, 0.0)


class TestParaRefillStreamIdentity:
    def test_scalar_stream_identical_across_refills(self):
        """> DRAW_BLOCK draws force refills; the block-buffered stream
        must equal scalar PARA draw for draw, including the extra
        side-selection draw consumed on each trigger."""
        draws = DRAW_BLOCK * 2 + DRAW_BLOCK // 3
        scalar = PARA(64, seed=7)
        batched = BatchedPARA(64, seed=7)
        for i in range(draws):
            a = scalar.on_activation(i & 7, i & 1023, float(i))
            b = batched.on_activation(i & 7, i & 1023, float(i))
            assert list(a) == list(b), f"stream diverged at draw {i}"
        assert scalar.counters.__dict__ == batched.counters.__dict__
        # Mid-block the batched rng is exactly one lookahead ahead: its
        # unconsumed buffer tail must equal scalar PARA's next draws
        # (``random(n)`` consumes the identical underlying stream as n
        # scalar ``random()`` calls), after which both generators sit at
        # the same point of the stream.
        remaining = batched._buffer[batched._buffer_pos:]
        assert remaining == [scalar._rng.random() for _ in remaining]
        assert (scalar._rng.bit_generator.state
                == batched._rng.bit_generator.state)

    def test_epoch_stream_identical_across_refills(self):
        """Epoch dispatch consumes the same stream: driving epochs until
        well past a refill boundary must leave the identical rng state
        and trigger history as scalar PARA."""
        length = DRAW_BLOCK + DRAW_BLOCK // 2
        rnd = random.Random(11)
        trace = make_trace(rnd, length)
        scalar = PARA(64, seed=3)
        batched = BatchedPARA(64, seed=3)
        expected = run_scalar(scalar, trace)
        got = run_epoch(batched, trace, random.Random(12))
        assert expected == got
        assert scalar.counters.__dict__ == batched.counters.__dict__
        remaining = batched._buffer[batched._buffer_pos:]
        assert remaining == [scalar._rng.random() for _ in remaining]
        assert (scalar._rng.bit_generator.state
                == batched._rng.bit_generator.state)

    def test_epoch_credit_never_spans_a_trigger(self):
        mech = BatchedPARA(16, seed=5)
        for _ in range(DRAW_BLOCK // 8):
            credit = mech.epoch_credit()
            if credit:
                triggers, actions = mech.on_activation_epoch(
                    None, None, None, count=credit)
                assert not triggers and not actions
            actions = mech.on_activation(0, 1, 0.0)
            # The first post-credit activation is the only place a
            # trigger may appear.
            assert actions is not None


class TestEpochColumnFlags:
    def test_rfm_accepts_missing_rows_and_times(self):
        mech = RFM(1 << 16)
        assert not mech.epoch_needs_rows and not mech.epoch_needs_times
        credit = mech.epoch_credit()
        assert credit > 4
        triggers, actions = mech.on_activation_epoch([0, 1, 0, 2], None,
                                                     None)
        assert triggers == () and actions == []
        assert mech._raa == {0: 2, 1: 1, 2: 1}

    def test_fallback_replay_substitutes_declared_unused_columns(self):
        """Push RFM past its credit so the sequential-replay fallback
        runs — it must accept the missing columns it declared unused and
        still trigger exactly like the scalar path."""
        scalar = RFM(64)
        epoch = RFM(64)
        banks = [3] * (scalar.raaimt + 4)
        expected = run_scalar(scalar, [(b, 0, 0.0) for b in banks])
        triggers, actions = epoch.on_activation_epoch(banks, None, None)
        assert [t for t, _ in expected] == list(triggers)
        assert [a for _, acts in expected for a in acts] == actions
        assert scalar._raa == epoch._raa

    def test_fallback_rejects_genuinely_missing_columns(self):
        mech = make_mitigation("Graphene", nrh=16, batched=True,
                               config=CONFIG)
        over = mech.threshold + 8  # force the replay fallback
        with pytest.raises(SimulationError):
            mech.on_activation_epoch([0] * over, None, [0.0] * over)
        with pytest.raises(SimulationError):
            mech.on_activation_epoch(None, None, None, count=over)


@pytest.mark.parametrize("name", ALL_MECHANISMS)
@pytest.mark.parametrize("batched", [False, True])
def test_epoch_parity_deterministic_sweep(name, batched):
    """Scalar and epoch dispatch agree on actions, counters, and every
    piece of internal state, across a spread of nRH values and traces."""
    for trial in range(6):
        rnd = random.Random(trial * 131 + 7)
        nrh = rnd.choice((16, 64, 128, 512, 1024))
        trace = make_trace(rnd, rnd.randrange(100, 900))
        scalar_mech = make_mitigation(name, nrh, batched=batched,
                                      config=CONFIG)
        epoch_mech = make_mitigation(name, nrh, batched=batched,
                                     config=CONFIG)
        expected = run_scalar(scalar_mech, trace)
        got = run_epoch(epoch_mech, trace, rnd)
        assert expected == got, (name, batched, nrh, trial)
        assert snapshot_state(scalar_mech) == snapshot_state(epoch_mech)
        assert (scalar_mech.counters.__dict__
                == epoch_mech.counters.__dict__)
        if name == "PARA":
            assert (scalar_mech._rng.bit_generator.state
                    == epoch_mech._rng.bit_generator.state)
