"""Tests for the deterministic seed tree."""

from repro.rng import SeedTree, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)

    def test_path_sensitivity(self):
        assert derive_seed(42, "a", 1) != derive_seed(42, "a", 2)
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_parent_sensitivity(self):
        assert derive_seed(42, "a") != derive_seed(43, "a")

    def test_path_not_concatenated(self):
        # ("ab",) and ("a", "b") must differ: separators matter.
        assert derive_seed(0, "ab") != derive_seed(0, "a", "b")

    def test_64_bit_range(self):
        seed = derive_seed(123, "x")
        assert 0 <= seed < (1 << 64)


class TestSeedTree:
    def test_same_path_same_child(self):
        root = SeedTree(7)
        assert root.child("m", "H5").seed == root.child("m", "H5").seed

    def test_generators_reproducible(self):
        root = SeedTree(7)
        a = root.generator("row", 3).random(5)
        b = root.generator("row", 3).random(5)
        assert (a == b).all()

    def test_generators_independent(self):
        root = SeedTree(7)
        a = root.generator("row", 3).random(5)
        b = root.generator("row", 4).random(5)
        assert (a != b).any()

    def test_uniform_in_unit_interval(self):
        root = SeedTree(99)
        for i in range(50):
            value = root.uniform("u", i)
            assert 0.0 <= value < 1.0

    def test_nested_children(self):
        root = SeedTree(1)
        deep = root.child("a").child("b").child("c")
        assert deep.seed == root.child("a").child("b").child("c").seed
