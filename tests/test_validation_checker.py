"""Tests for the runtime DDR protocol checker."""

import json

import pytest

from repro.errors import ConfigError, ProtocolViolation
from repro.mitigations import make_mitigation
from repro.sim.config import SystemConfig
from repro.sim.system import MemorySystem
from repro.validation import (
    CHECK_MODES,
    ProtocolChecker,
    default_check_mode,
    make_checker,
    set_default_check_mode,
)
from repro.workloads.attack import double_sided_trace

CONFIG = SystemConfig(num_cores=1)


def _run_attack(checker, *, mitigation=None, hammers=400):
    mechanism = mitigation or make_mitigation("Graphene", nrh=128)
    trace = double_sided_trace(CONFIG, hammers=hammers)
    system = MemorySystem(CONFIG, [trace], mitigation=mechanism,
                          observer=checker)
    system.run()
    return checker


def _dropping_attack(checker, hammers=400):
    """An attack whose controller silently drops preventive refreshes."""
    mechanism = make_mitigation("Graphene", nrh=128)
    trace = double_sided_trace(CONFIG, hammers=hammers)
    system = MemorySystem(CONFIG, [trace], mitigation=mechanism,
                          observer=checker)
    system.controller._do_preventive_refresh = lambda action: None
    system.run()
    return checker


class TestMakeChecker:
    def test_off_is_none(self):
        assert make_checker(CONFIG, mode="off") is None

    def test_tolerant_and_strict_build(self):
        assert isinstance(make_checker(CONFIG, mode="tolerant"),
                          ProtocolChecker)
        assert isinstance(make_checker(CONFIG, mode="strict"),
                          ProtocolChecker)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigError):
            make_checker(CONFIG, mode="paranoid")

    def test_default_mode_round_trip(self):
        assert default_check_mode() == "off"
        set_default_check_mode("tolerant")
        try:
            assert default_check_mode() == "tolerant"
        finally:
            set_default_check_mode("off")

    def test_default_mode_validated(self):
        with pytest.raises(ConfigError):
            set_default_check_mode("nope")
        assert "off" in CHECK_MODES


class TestCleanRuns:
    def test_clean_attack_run_has_no_violations(self):
        checker = _run_attack(ProtocolChecker(
            CONFIG, mode="tolerant",
            mitigation=make_mitigation("Graphene", nrh=128)))
        assert checker.violation_count == 0
        assert checker.by_rule() == {}

    def test_summary_shape(self):
        checker = _run_attack(ProtocolChecker(CONFIG, mode="tolerant"))
        summary = checker.summary()
        assert summary["violations"] == checker.violation_count


class TestViolations:
    def test_dropped_refreshes_detected_tolerant(self):
        checker = _dropping_attack(ProtocolChecker(
            CONFIG, mode="tolerant",
            mitigation=make_mitigation("Graphene", nrh=128)))
        assert checker.by_rule().get("mitigation.dropped-refresh", 0) > 0

    def test_strict_mode_raises(self):
        checker = ProtocolChecker(
            CONFIG, mode="strict",
            mitigation=make_mitigation("Graphene", nrh=128))
        with pytest.raises(ProtocolViolation) as excinfo:
            _dropping_attack(checker)
        assert excinfo.value.rule
        assert excinfo.value.time_ns >= 0.0

    def test_max_violations_overflow_counted(self):
        checker = _dropping_attack(ProtocolChecker(
            CONFIG, mode="tolerant",
            mitigation=make_mitigation("Graphene", nrh=128),
            max_violations=3))
        assert len(checker.violations) == 3
        assert checker.overflowed_violations > 0
        assert checker.violation_count == 3 + checker.overflowed_violations

    def test_violation_json_fields(self):
        checker = _dropping_attack(ProtocolChecker(
            CONFIG, mode="tolerant",
            mitigation=make_mitigation("Graphene", nrh=128)))
        payload = checker.violations[0].to_json()
        assert set(payload) == {"rule", "time_ns", "message"}


class TestLedger:
    def test_write_ledger_round_trips(self, tmp_path):
        checker = _dropping_attack(ProtocolChecker(
            CONFIG, mode="tolerant",
            mitigation=make_mitigation("Graphene", nrh=128)))
        path = tmp_path / "violations.jsonl"
        written = checker.write_ledger(path)
        lines = path.read_text().splitlines()
        assert written == len(lines) == len(checker.violations)
        parsed = [json.loads(line) for line in lines]
        assert parsed == [v.to_json() for v in checker.violations]

    def test_same_seed_identical_ledgers(self):
        """The whole pipeline is deterministic: two identical runs produce
        byte-identical violation ledgers."""
        ledgers = []
        for _ in range(2):
            checker = _dropping_attack(ProtocolChecker(
                CONFIG, mode="tolerant",
                mitigation=make_mitigation("Graphene", nrh=128)))
            ledgers.append([v.to_json() for v in checker.violations])
        assert ledgers[0] == ledgers[1]
        assert ledgers[0]  # the comparison is not vacuous
