"""Tests for manufacturer profiles."""

import pytest

from repro.dram.vendor import Manufacturer, vendor_profile
from repro.errors import ConfigError


class TestManufacturer:
    def test_from_module_id(self):
        assert Manufacturer.from_module_id("H5") is Manufacturer.H
        assert Manufacturer.from_module_id("M2") is Manufacturer.M
        assert Manufacturer.from_module_id("s13") is Manufacturer.S

    def test_invalid_ids_rejected(self):
        with pytest.raises(ConfigError):
            Manufacturer.from_module_id("X1")
        with pytest.raises(ConfigError):
            Manufacturer.from_module_id("")


class TestVendorProfiles:
    def test_lookup_by_string(self):
        assert vendor_profile("h").manufacturer is Manufacturer.H

    def test_safe_reductions_match_paper(self):
        # §5.1 red lines: 64 % (H), 82 % (M), 36 % (S) reductions.
        assert vendor_profile("H").safe_tras_factor_nrh == pytest.approx(0.36)
        assert vendor_profile("M").safe_tras_factor_nrh == pytest.approx(0.18)
        assert vendor_profile("S").safe_tras_factor_nrh == pytest.approx(0.64)

    def test_ber_safe_reductions_match_paper(self):
        # §5.2 red lines: 36 % (H), 82 % (M), 19 % (S) reductions.
        assert vendor_profile("H").safe_tras_factor_ber == pytest.approx(0.64)
        assert vendor_profile("M").safe_tras_factor_ber == pytest.approx(0.18)
        assert vendor_profile("S").safe_tras_factor_ber == pytest.approx(0.81)

    def test_only_h_has_halfdouble(self):
        # §6: only Mfr. H modules exhibit Half-Double bitflips.
        assert vendor_profile("H").halfdouble_row_fraction > 0
        assert vendor_profile("M").halfdouble_row_fraction == 0
        assert vendor_profile("S").halfdouble_row_fraction == 0

    def test_only_s_decays_under_repeated_pcr(self):
        # Fig. 12: only Mfr. S shows N_RH decay with restorations.
        assert vendor_profile("S").pcr_decay_restorations is not None
        assert vendor_profile("H").pcr_decay_restorations is None
        assert vendor_profile("M").pcr_decay_restorations is None

    def test_halfdouble_shape_dips_then_spikes(self):
        # Fig. 13: prevalence dips at 0.36 (-39 %) and spikes at 0.18.
        shape = vendor_profile("H").halfdouble_shape
        assert shape[0.36] < shape[1.00]
        assert shape[0.18] > shape[1.00]

    def test_temperature_sensitivities_small(self):
        # Takeaway 4 magnitudes: 0.31 % / 0.20 % / 0.08 %.
        for vendor in "HMS":
            assert vendor_profile(vendor).temperature_nrh_sensitivity < 0.01
