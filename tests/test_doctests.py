"""Keep the docstring examples honest."""

import doctest

import pytest

import repro.analysis.render
import repro.dram.charge
import repro.rng
import repro.units

MODULES = (
    repro.units,
    repro.rng,
    repro.dram.charge,
    repro.analysis.render,
)


@pytest.mark.parametrize("module", MODULES,
                         ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0  # the module actually carries examples
