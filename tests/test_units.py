"""Tests for repro.units."""

import pytest

from repro.units import (
    K,
    KIB,
    MS,
    NS,
    S,
    US,
    cycles_to_ns,
    format_time_ns,
    ns_to_cycles,
)


class TestConstants:
    def test_time_ladder(self):
        assert US == 1000 * NS
        assert MS == 1000 * US
        assert S == 1000 * MS

    def test_sizes(self):
        assert KIB == 1024
        assert K == 1000


class TestNsToCycles:
    def test_exact_conversion(self):
        # 10 ns at 1000 MHz = 10 cycles exactly.
        assert ns_to_cycles(10.0, 1000.0) == 10

    def test_rounds_up(self):
        # 10 ns at 1200 MHz = 12 cycles exactly; 10.1 ns rounds up to 13.
        assert ns_to_cycles(10.0, 1200.0) == 12
        assert ns_to_cycles(10.1, 1200.0) == 13

    def test_zero(self):
        assert ns_to_cycles(0.0, 1600.0) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ns_to_cycles(-1.0, 1600.0)

    def test_round_trip_upper_bounds(self):
        # cycles -> ns -> cycles is the identity.
        for cycles in (1, 7, 33, 1000):
            ns = cycles_to_ns(cycles, 2400.0)
            assert ns_to_cycles(ns, 2400.0) == cycles


class TestCyclesToNs:
    def test_basic(self):
        assert cycles_to_ns(2400, 2400.0) == pytest.approx(1000.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            cycles_to_ns(-1, 2400.0)


class TestFormatTime:
    def test_nanoseconds(self):
        assert format_time_ns(33.0) == "33ns"

    def test_microseconds(self):
        assert format_time_ns(489_000.0) == "489us"

    def test_milliseconds(self):
        assert format_time_ns(374_000_000.0) == "374ms"

    def test_seconds(self):
        assert format_time_ns(36.0 * S) == "36s"

    def test_fractional(self):
        assert format_time_ns(7_300_000_000.0) == "7.3s"
