"""Tests for the RowPress disturbance extension."""

import pytest

from repro.dram.rowpress import (
    MIN_ON_TIME_NS,
    CombinedPattern,
    equivalent_nrh,
    press_amplification,
    pressed_dose,
)
from repro.errors import ConfigError
from repro.units import US


class TestPressAmplification:
    def test_minimum_on_time_is_plain_hammering(self):
        assert press_amplification(MIN_ON_TIME_NS) == pytest.approx(1.0)

    def test_monotone_in_on_time(self):
        values = [press_amplification(t)
                  for t in (36.0, 360.0, 3_600.0, 7_800.0, 36_000.0)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_trefi_on_time_order_of_magnitude(self):
        # RowPress headline: one-tREFI on-time cuts the needed activation
        # count by roughly 10x.
        assert press_amplification(7_800.0) == pytest.approx(10.0, rel=0.15)

    def test_clamped_below_minimum(self):
        assert press_amplification(1.0) == press_amplification(MIN_ON_TIME_NS)

    def test_invalid_rejected(self):
        with pytest.raises(ConfigError):
            press_amplification(0.0)


class TestPressedDose:
    def test_plain_hammering_equivalence(self):
        dose = pressed_dose(1000, MIN_ON_TIME_NS)
        assert dose.near == pytest.approx(2000.0)

    def test_pressing_amplifies(self):
        plain = pressed_dose(1000, MIN_ON_TIME_NS)
        pressed = pressed_dose(1000, 7_800.0)
        assert pressed.near > 5 * plain.near

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            pressed_dose(-1, 100.0)


class TestCombinedPattern:
    def test_effective_hammer_count(self):
        pattern = CombinedPattern(activations=500, t_on_ns=7_800.0)
        assert pattern.effective_hammer_count == pytest.approx(
            500 * press_amplification(7_800.0))

    def test_duration(self):
        pattern = CombinedPattern(activations=100, t_on_ns=1_000.0)
        assert pattern.duration_ns(trp_ns=15.0) == pytest.approx(
            2 * 100 * 1_015.0)

    def test_equivalent_nrh_sub_1k(self):
        # §2.2: combined patterns make mitigations face sub-1K thresholds.
        assert equivalent_nrh(8_000, 7_800.0) < 1_000

    def test_combined_flips_below_pure_threshold(self, host_s6):
        # A pressed pattern flips a row at an activation count far below
        # its pure-hammer N_RH.
        population = host_s6.module.row_population(0, 500)
        pattern_obj = population.worst_case_pattern()
        nrh = population.effective_nrh(pattern=pattern_obj)
        combined = CombinedPattern(activations=int(nrh // 5),
                                   t_on_ns=2 * US)
        flips = population.hammer_flips(combined.dose(), pattern=pattern_obj)
        assert flips > 0

    def test_validation(self):
        with pytest.raises(ConfigError):
            CombinedPattern(activations=-1, t_on_ns=100.0)
        with pytest.raises(ConfigError):
            equivalent_nrh(0, 100.0)
