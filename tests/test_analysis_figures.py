"""Unit tests for the figure data builders (fast configurations)."""

import pytest

from repro.analysis.figures import (
    MITIGATIONS,
    fig4_inflection,
    fig4_motivation,
    fig8_sensitive_fraction,
    fig12_npr_scaling,
    fig14_retention,
    fig16_latency_sweep,
    fig19_periodic,
)
from repro.errors import ConfigError
from repro.units import MS


class TestFig4:
    def test_curve_definitions(self):
        data = fig4_motivation(("S6",))
        curves = data["S6"]
        # Latency is (f*tRAS + tRP) / (tRAS + tRP): at f=1 it is 1.
        assert curves["latency"][1.00] == pytest.approx(1.0)
        assert curves["latency"][0.36] == pytest.approx(
            (0.36 * 33 + 15) / 48, rel=0.01)
        # Count = 1 / N_RH ratio; time = count x latency; energy = count x time.
        for factor, ratio in curves["nrh"].items():
            if ratio > 0:
                count = curves["count"][factor]
                assert count == pytest.approx(1.0 / ratio)
                assert curves["time"][factor] == pytest.approx(
                    count * curves["latency"][factor])
                assert curves["energy"][factor] == pytest.approx(
                    count * curves["time"][factor])

    def test_retention_fail_factors_excluded_from_costs(self):
        curves = fig4_motivation(("S6",))["S6"]
        assert 0.18 not in curves["count"]  # N_RH = 0 there

    def test_inflection_below_nominal(self):
        curves = fig4_motivation(("S6",))["S6"]
        factor, value = fig4_inflection(curves, "time")
        assert factor < 1.0
        assert value < curves["time"][1.00]

    def test_invulnerable_module_rejected(self):
        with pytest.raises(ConfigError):
            fig4_motivation(("H0",))


class TestFig8Fraction:
    def test_counts_below_threshold(self):
        points = [(10_000, 0.9), (12_000, 0.7), (15_000, 0.5)]
        assert fig8_sensitive_fraction(points) == pytest.approx(2 / 3)

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            fig8_sensitive_fraction([])


class TestFig12:
    def test_structure_and_boundary(self):
        data = fig12_npr_scaling(("S6",), n_prs=(1, 2_500), per_region=4)
        assert set(data) == {"S6"}
        assert data["S6"][1] > 0
        assert data["S6"][2_500] == 0


class TestFig14:
    def test_all_points_present(self):
        data = fig14_retention(("M2",), tras_factors=(1.0, 0.27))
        series = data["M2"]
        assert (0.27, 10, 256 * MS) in series
        assert all(0.0 <= v <= 1.0 for v in series.values())


class TestFig16:
    def test_skips_na_operating_points(self):
        # Vendor S has no 0.18 operating point (Table 4 N/A): the series
        # simply omits the factor instead of crashing.
        data = fig16_latency_sweep(
            mitigations=("Graphene",), vendors=("S",), nrh_values=(128,),
            tras_factors=(0.45, 0.18), workloads=("spec06.gcc",),
            requests=400)
        series = data[("Graphene", "S", 128)]
        assert 0.45 in series
        assert 0.18 not in series


class TestFig19:
    def test_structure(self):
        data = fig19_periodic(densities_gbit=(8,),
                              latency_factors=(1.0, 0.36), requests=400)
        metrics = data[8][0.36]
        assert set(metrics) == {"performance", "energy"}
        assert metrics["performance"] > 0


class TestConstants:
    def test_five_mitigations(self):
        assert MITIGATIONS == ("PARA", "RFM", "PRAC", "Hydra", "Graphene")
