"""Parity and plumbing tests for the vectorized characterization fast path.

The scalar Algorithm 1 path is the oracle: every test here asserts the
vectorized kernels (bank-level trait arrays, analytic probe folding, probe
memoization) reproduce it *bit-exactly*, not approximately.
"""

import pytest

from repro.bender.host import DRAMBenderHost
from repro.characterization.algorithm1 import (
    CharacterizationConfig,
    measure_row,
    perform_rh,
)
from repro.characterization.arraykernel import measure_rows_array
from repro.characterization.probecache import ProbeCache
from repro.characterization.sweeps import characterize_module
from repro.characterization.vectorized import measure_rows
from repro.dram.disturbance import DataPattern
from repro.dram.kernels import EvalCounters
from repro.errors import CharacterizationError, ConfigError, ProgramError
from repro.exec.parity import assert_all_parity, assert_parity
from repro.validation.physics import model_digest

FAST = CharacterizationConfig(iterations=1)

#: One module per vendor plus the invulnerable outlier (H0 never flips).
PARITY_MODULES = ("H5", "M6", "S6", "H0")

#: (tras_factor, n_pr) grid: nominal latency, a mid reduction, and a deep
#: reduction; n_pr = 20 exercises the bulk Restore macro (> UNROLL_LIMIT).
PARITY_POINTS = ((1.00, 1), (0.45, 4), (0.18, 20))


def _testable_rows(host: DRAMBenderHost, count: int = 8) -> tuple[int, ...]:
    rows = [r for r in range(2, 64)
            if len(host.module.mapping.neighbors(r, 1)) == 2]
    return tuple(rows[:count])


class TestScalarParity:
    @pytest.mark.parametrize("batch_measure", (measure_rows,
                                               measure_rows_array),
                             ids=("vectorized", "array"))
    @pytest.mark.parametrize("module_id", PARITY_MODULES)
    @pytest.mark.parametrize("temperature", (80.0, 50.0))
    def test_bit_exact_measurements(self, module_id, temperature,
                                    batch_measure):
        scalar_host = DRAMBenderHost(module_id, temperature_c=temperature)
        batch_host = DRAMBenderHost(module_id, temperature_c=temperature)
        rows = _testable_rows(scalar_host)
        nominal = scalar_host.module.timing.tRAS
        for factor, n_pr in PARITY_POINTS:
            tras = factor * nominal
            # nrh, ber, wcdp — all fields, bit-exact
            assert_all_parity(
                [measure_row(scalar_host, 1, row, tras_red_ns=tras,
                             n_pr=n_pr, config=FAST) for row in rows],
                batch_measure(batch_host, 1, rows, tras_red_ns=tras,
                              n_pr=n_pr, config=FAST),
                label=batch_measure.__name__)

    def test_batch_traits_match_per_row_traits(self, host_h5):
        fresh = DRAMBenderHost("H5")
        rows = _testable_rows(fresh)
        batch = fresh.module.bank_traits(1, rows)
        for i, row in enumerate(rows):
            assert batch.traits[i] == host_h5.module.row_population(1, row).traits
        # The registered per-row populations are views over the batch.
        for i, row in enumerate(rows):
            assert fresh.module.row_population(1, row).traits is batch.traits[i]

    @pytest.mark.parametrize("fast_kernel", ("vectorized", "array"))
    def test_characterize_module_kernels_identical(self, fast_kernel):
        kw = dict(tras_factors=(0.45,), n_prs=(1, 4), per_region=4, seed=11)
        assert_parity(
            lambda: characterize_module("S6", kernel="scalar", **kw).to_json(),
            lambda: characterize_module("S6", kernel=fast_kernel,
                                        **kw).to_json(),
            label=f"{fast_kernel} kernel")

    def test_same_validation_errors(self):
        host = DRAMBenderHost("H5")
        with pytest.raises(CharacterizationError, match="tras_red_ns"):
            measure_rows(host, 1, (3, 4), tras_red_ns=-1.0)
        with pytest.raises(CharacterizationError, match="n_pr"):
            measure_rows(host, 1, (3, 4), n_pr=0)
        with pytest.raises(CharacterizationError, match="physical neighbors"):
            measure_rows(host, 1, (3, 0))  # row 0 sits at the bank edge

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ConfigError, match="device kernel"):
            characterize_module("S6", tras_factors=(0.45,), per_region=2,
                                kernel="warp-drive")


class TestEvalCounters:
    def test_fast_path_model_work_is_bounded(self):
        """CI smoke bound: the fast path performs a fixed, small number of
        model evaluations per measured row-point (counter-based, so it
        cannot flake on machine speed)."""
        host = DRAMBenderHost("H5")
        rows = _testable_rows(host)
        counters = EvalCounters()
        measure_rows(host, 1, rows, tras_red_ns=0.45 * 33.0, n_pr=4,
                     config=FAST, counters=counters)
        # ~6 WCDP probes + 1 retention + ~7 bisection per row-point.
        assert counters.evals_per_row_point(len(rows), 1) <= 20
        assert counters.probe_batches > 0

    def test_repeated_probes_hit_the_memo(self):
        host = DRAMBenderHost("H5")
        rows = _testable_rows(host)
        counters = EvalCounters()
        config = CharacterizationConfig(iterations=3)
        measure_rows(host, 1, rows, tras_red_ns=0.45 * 33.0,
                     config=config, counters=counters)
        # The BER probe re-reads the WCDP scan's hc_high probe per row.
        assert counters.cache_hits >= len(rows)


class TestProbeCache:
    def test_scalar_cache_returns_same_values(self, host_h5):
        cache = ProbeCache()
        kwargs = dict(tras_red_ns=0.45 * 33.0, n_pr=2, config=FAST)
        uncached = measure_row(host_h5, 1, 5, **kwargs)
        warm = measure_row(host_h5, 1, 5, cache=cache, **kwargs)
        hot = measure_row(host_h5, 1, 5, cache=cache, **kwargs)
        assert uncached == warm == hot
        assert cache.hits > 0

    def test_lru_eviction_is_bounded(self):
        cache = ProbeCache(maxsize=4)
        cache.ensure("digest-a")
        for i in range(6):
            cache.put(("key", i), i)
        assert len(cache) == 4
        assert cache.get(("key", 0)) is None  # oldest entries evicted
        assert cache.get(("key", 5)) == 5

    def test_calibration_drift_invalidates(self):
        cache = ProbeCache()
        cache.ensure("digest-a")
        cache.put(("probe", 1), 42)
        assert cache.get(("probe", 1)) == 42
        cache.ensure("digest-a")  # same digest: entries survive
        assert len(cache) == 1
        misses_before = cache.misses
        cache.ensure("digest-b")  # drift: everything dropped
        assert len(cache) == 0
        assert cache.invalidations == 1
        assert cache.get(("probe", 1)) is None
        assert cache.misses == misses_before + 1

    def test_measure_row_rebinds_stale_cache(self, host_h5):
        cache = ProbeCache()
        cache.ensure("stale-digest")
        cache.put(("poison",), 999)
        measure_row(host_h5, 1, 5, tras_red_ns=33.0, config=FAST, cache=cache)
        expected = model_digest(host_h5.module.spec.module_id,
                                host_h5.module.seed)
        assert cache.digest == expected
        assert cache.invalidations == 1
        assert ("poison",) not in [k for k in cache._entries]

    def test_bad_maxsize_rejected(self):
        with pytest.raises(ValueError):
            ProbeCache(maxsize=0)


class TestCompiledExecutor:
    @pytest.mark.parametrize("module_id", ("H5", "M6", "S6"))
    def test_probe_parity_with_stepping(self, module_id):
        stepping = DRAMBenderHost(module_id, kernel="stepping")
        compiled = DRAMBenderHost(module_id, kernel="compiled")
        nominal = stepping.module.timing.tRAS
        for factor, n_pr in PARITY_POINTS:
            for hc in (0, 1_000, 100_000):
                args = (1, 20, DataPattern.ROW_STRIPE, hc,
                        factor * nominal, n_pr)
                assert (perform_rh(stepping, *args)
                        == perform_rh(compiled, *args))
        assert stepping.module.clock_ns == compiled.module.clock_ns

    def test_protocol_errors_preserved(self):
        host = DRAMBenderHost("H5", kernel="compiled")
        program = host.new_program().act(0, 5).act(0, 6)
        with pytest.raises(ProgramError, match=r"\[1\] ACT to open bank 0"):
            host.run(program)
        program = host.new_program().pre(0)
        with pytest.raises(ProgramError, match=r"\[0\] PRE on closed bank 0"):
            host.run(program)
        program = host.new_program().act(0, 5)
        with pytest.raises(ProgramError, match="still open"):
            host.run(program)

    def test_unknown_host_kernel_rejected(self):
        with pytest.raises(ConfigError, match="host kernel"):
            DRAMBenderHost("H5", kernel="quantum")


class TestExecutionResultFlips:
    def test_missing_key_raises_program_error(self, host_h5):
        program = host_h5.new_program()
        program.init_rows(1, 5, (4, 6), DataPattern.ROW_STRIPE)
        program.check_bitflips(1, 5, key="victim")
        result = host_h5.run(program)
        with pytest.raises(ProgramError, match="no bitflip count recorded"):
            result.flips("victm")  # typo'd key
        with pytest.raises(ProgramError, match="recorded keys: victim"):
            result.flips("aggressor")

    def test_empty_result_names_no_keys(self):
        from repro.bender.executor import ExecutionResult
        with pytest.raises(ProgramError, match="<none>"):
            ExecutionResult().flips("anything")
