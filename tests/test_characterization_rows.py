"""Tests for test-row selection."""

import pytest

from repro.characterization.rows import select_test_bank, select_test_rows
from repro.errors import CharacterizationError


class TestSelectTestRows:
    def test_three_regions(self):
        rows = select_test_rows(65_536, per_region=1024)
        assert len(rows) == 3 * 1024

    def test_regions_span_bank(self):
        rows = select_test_rows(65_536, per_region=100)
        assert min(rows) < 1_000  # beginning
        assert any(30_000 < r < 36_000 for r in rows)  # middle
        assert max(rows) > 64_000  # end

    def test_no_duplicates(self):
        rows = select_test_rows(65_536, per_region=512)
        assert len(rows) == len(set(rows))

    def test_rows_leave_neighbor_margin(self):
        rows = select_test_rows(65_536, per_region=64)
        assert min(rows) >= 2
        assert max(rows) <= 65_533

    def test_small_bank_rejected(self):
        with pytest.raises(CharacterizationError):
            select_test_rows(100, per_region=64)

    def test_invalid_per_region_rejected(self):
        with pytest.raises(CharacterizationError):
            select_test_rows(65_536, per_region=0)


class TestSelectTestBank:
    def test_in_range(self):
        for module_id in ("H5", "M2", "S6"):
            bank = select_test_bank(module_id, 16)
            assert 0 <= bank < 16

    def test_deterministic_per_module(self):
        assert select_test_bank("H5", 16) == select_test_bank("H5", 16)

    def test_varies_across_modules(self):
        banks = {select_test_bank(f"S{i}", 16) for i in range(14)}
        assert len(banks) > 1

    def test_invalid_banks_rejected(self):
        with pytest.raises(CharacterizationError):
            select_test_bank("H5", 0)
