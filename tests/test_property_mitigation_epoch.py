"""Property-based parity for the epoch (batch) mitigation protocol.

Hypothesis draws a mechanism, an activation trace, and — the adversarial
part — the epoch segmentation itself: epoch lengths are chosen to land
on, just before, just after, and far past each ``epoch_credit()`` answer,
so boundaries fall directly around trigger points and exercise both the
vectorized in-credit paths and the sequential-replay overshoot fallback.
For every draw, scalar per-activation dispatch and epoch dispatch must
produce identical actions (at identical trace indices), identical
counters, identical internal table/counter state, and — for PARA — an
identical rng stream position.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mitigations import make_mitigation
from repro.sim.config import SystemConfig

from tests.test_mitigation_epoch import run_scalar, snapshot_state

CONFIG = SystemConfig()
MECHANISMS = ("None", "PARA", "Graphene", "Hydra", "RFM", "PRAC")


@st.composite
def epoch_setups(draw):
    name = draw(st.sampled_from(MECHANISMS))
    batched = draw(st.booleans())
    nrh = draw(st.sampled_from((8, 16, 64, 128, 512, 1024)))
    length = draw(st.integers(min_value=10, max_value=400))
    hot_banks = draw(st.integers(min_value=1, max_value=4))
    hot_rows = draw(st.sampled_from((2, 8, 64)))
    # Per-activation addresses: a hot set (to reach thresholds fast, so
    # triggers actually occur) mixed with uniform background noise.
    picks = draw(st.lists(
        st.tuples(st.booleans(), st.integers(min_value=0, max_value=4095)),
        min_size=length, max_size=length))
    trace = []
    now_ns = 0.0
    for is_hot, value in picks:
        if is_hot:
            flat_bank = value % hot_banks
            row = (value // hot_banks) % hot_rows
        else:
            flat_bank = value % 8
            row = value
        now_ns += 7.5
        trace.append((flat_bank, row, now_ns))
    # Epoch-boundary offsets relative to the credited run length:
    # 0 = exactly the credit, negative = stop short, positive = overshoot
    # into the replay fallback.  Drawn as a reusable cycle so boundaries
    # keep landing around trigger points as the trace advances.
    offsets = draw(st.lists(st.sampled_from((-3, -1, 0, 0, 0, 1, 2, 7)),
                            min_size=1, max_size=8))
    return name, batched, nrh, trace, offsets


def run_epoch_adversarial(mech, trace, offsets):
    """Epoch dispatch with boundaries perturbed around the credit."""
    out = []
    index = 0
    needs_trace = mech.epoch_needs_trace
    needs_rows = needs_trace and mech.epoch_needs_rows
    needs_times = needs_trace and mech.epoch_needs_times
    step = 0
    while index < len(trace):
        credit = mech.epoch_credit()
        offset = offsets[step % len(offsets)]
        step += 1
        n = credit + offset
        overshoot = n > credit
        if overshoot and not needs_trace:
            # Count-only mechanisms cannot replay an overshoot without
            # the trace; feed them their exact credit instead.
            n = credit
            overshoot = False
        n = min(n, len(trace) - index)
        if n > 0:
            segment = trace[index:index + n]
            if needs_trace:
                # The overshoot fallback replays through on_activation,
                # which may need the full columns regardless of the
                # opt-out flags' steady-state promise.
                rows = ([x[1] for x in segment]
                        if needs_rows or overshoot else None)
                times = ([x[2] for x in segment]
                         if needs_times or overshoot else None)
                triggers, actions = mech.on_activation_epoch(
                    [x[0] for x in segment], rows, times)
            else:
                triggers, actions = mech.on_activation_epoch(
                    None, None, None, count=n)
            if n <= credit:
                assert not triggers and not actions, \
                    "mechanism acted inside its credited epoch"
            elif triggers:
                # Overshoot fallback: trigger indices are epoch-relative
                # and the actions come back as one concatenated list (in
                # activation order), which is all ``flatten`` compares.
                out.extend((index + t, None) for t in triggers[:-1])
                out.append((index + triggers[-1], actions))
            index += n
        else:
            # Zero credit (or zero-length epoch drawn): scalar boundary.
            flat_bank, row, now_ns = trace[index]
            actions = mech.on_activation(flat_bank, row, now_ns)
            if actions:
                out.append((index, list(actions)))
            index += 1
    return out


def flatten(result):
    """Reduce [(index, actions)] to comparable (indices, all_actions)."""
    indices = [index for index, _ in result]
    actions = [a for _, acts in result if acts for a in acts]
    return indices, actions


@settings(max_examples=60, deadline=None)
@given(epoch_setups())
def test_epoch_dispatch_matches_scalar(setup):
    name, batched, nrh, trace, offsets = setup
    scalar_mech = make_mitigation(name, nrh, batched=batched, config=CONFIG)
    epoch_mech = make_mitigation(name, nrh, batched=batched, config=CONFIG)
    expected = run_scalar(scalar_mech, trace)
    got = run_epoch_adversarial(epoch_mech, trace, offsets)
    assert flatten(expected) == flatten(got), (name, batched, nrh)
    assert snapshot_state(scalar_mech) == snapshot_state(epoch_mech), \
        (name, batched, nrh)
    assert scalar_mech.counters.__dict__ == epoch_mech.counters.__dict__
    if name == "PARA":
        if batched:
            # Both sides are BatchedPARA here, so both rngs sit one
            # block-lookahead ahead of consumption: the stream position
            # comparison is buffer-to-buffer, not buffer-to-fresh-draws.
            assert scalar_mech._buffer_pos == epoch_mech._buffer_pos
            assert scalar_mech._buffer == epoch_mech._buffer
        assert (scalar_mech._rng.bit_generator.state
                == epoch_mech._rng.bit_generator.state)
