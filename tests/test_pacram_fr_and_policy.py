"""Tests for the FR bit vector and the PaCRAM refresh-latency policy."""

import pytest

from repro.core.config import PaCRAMConfig
from repro.core.fr_bitvector import FRBitVector
from repro.core.pacram import PaCRAM
from repro.errors import ConfigError
from repro.sim.config import SystemConfig


class TestFRBitVector:
    def test_all_rows_start_in_f_state(self):
        fr = FRBitVector(4, 128)
        assert fr.fraction_in_f_state() == 1.0
        assert fr.needs_full_restoration(0, 0)

    def test_full_restoration_moves_to_p(self):
        fr = FRBitVector(4, 128)
        fr.mark_fully_restored(2, 50)
        assert not fr.needs_full_restoration(2, 50)
        assert fr.needs_full_restoration(2, 51)

    def test_reset_pulls_all_to_f(self):
        fr = FRBitVector(2, 64)
        for row in range(64):
            fr.mark_fully_restored(0, row)
        fr.reset_all()
        assert fr.fraction_in_f_state() == 1.0

    def test_storage_one_bit_per_row(self):
        # §8.4: 8 KB per 64K-row bank.
        fr = FRBitVector(1, 65_536)
        assert fr.storage_bits == 65_536
        assert fr.storage_bits // 8 == 8192

    def test_bounds_checked(self):
        fr = FRBitVector(2, 64)
        with pytest.raises(ConfigError):
            fr.needs_full_restoration(2, 0)
        with pytest.raises(ConfigError):
            fr.mark_fully_restored(0, 64)


def make_policy(module_id: str, factor: float) -> tuple[PaCRAM, SystemConfig]:
    config = SystemConfig(num_cores=1)
    pacram_config = PaCRAMConfig.from_catalog(module_id, factor)
    return PaCRAM(config, pacram_config), config


class TestPaCRAMPolicy:
    def test_footnote6_all_partial(self):
        # H5 at 0.36: t_FCRI (7.3 s) >> tREFW (32 ms) -> always partial.
        policy, config = make_policy("H5", 0.36)
        for row in (10, 10, 20, 30):
            tras, full = policy.preventive_tras_ns(0, row, 0.0)
            assert not full
            assert tras == pytest.approx(config.timing.tRAS * 0.36)
        assert policy.full_refreshes == 0

    def test_first_refresh_full_then_partial(self):
        # S6 at 0.36: t_FCRI 374 ms > DDR5 tREFW 32 ms... also always
        # partial.  Force the per-row path with a short-t_FCRI config.
        config = SystemConfig(num_cores=1)
        pacram_config = PaCRAMConfig(
            module_id="S6", tras_factor=0.36, nrh_reduction_ratio=0.5,
            nrh_reduced=3_900, npcr=2, tfcri_ns=1e6)  # 1 ms < tREFW
        policy = PaCRAM(config, pacram_config)
        tras1, full1 = policy.preventive_tras_ns(0, 77, 0.0)
        tras2, full2 = policy.preventive_tras_ns(0, 77, 10.0)
        assert full1 and not full2
        assert tras1 == config.timing.tRAS
        assert tras2 == pytest.approx(config.timing.tRAS * 0.36)

    def test_tfcri_reset_forces_full_again(self):
        config = SystemConfig(num_cores=1)
        pacram_config = PaCRAMConfig(
            module_id="S6", tras_factor=0.36, nrh_reduction_ratio=0.5,
            nrh_reduced=3_900, npcr=2, tfcri_ns=1e6)
        policy = PaCRAM(config, pacram_config)
        policy.preventive_tras_ns(0, 77, 0.0)          # full
        policy.preventive_tras_ns(0, 77, 10.0)         # partial
        _, full = policy.preventive_tras_ns(0, 77, 2e6)  # past t_FCRI
        assert full

    def test_bank_granular_for_in_dram_victims(self):
        config = SystemConfig(num_cores=1)
        pacram_config = PaCRAMConfig(
            module_id="S6", tras_factor=0.36, nrh_reduction_ratio=0.5,
            nrh_reduced=3_900, npcr=2, tfcri_ns=1e6)
        policy = PaCRAM(config, pacram_config)
        _, full_first = policy.preventive_tras_ns(5, -1, 0.0)
        _, full_second = policy.preventive_tras_ns(5, -1, 1.0)
        assert full_first and not full_second

    def test_nrh_scale_matches_reduction(self):
        policy, _ = make_policy("H5", 0.27)
        assert policy.nrh_scale() == pytest.approx(9_400 / 10_200)

    def test_nrh_scale_capped_at_one(self):
        policy, _ = make_policy("M2", 0.18)
        assert policy.nrh_scale() <= 1.0

    def test_periodic_refreshes_unaffected(self):
        # Footnote 5: PaCRAM does not touch periodic refresh latency.
        policy, _ = make_policy("H5", 0.36)
        assert policy.periodic_refresh_scale() == 1.0
