"""Tests for §8.5 on-die PaCRAM, §10 SPD configs, and online profiling."""

import pytest

from repro.core.config import PaCRAMConfig
from repro.core.ondie import ModeRegister, OnDiePaCRAM, SelfManagingDRAMPaCRAM
from repro.core.online_profiling import OnlineProfiler
from repro.core.spd import SpdEntry, SpdRecord, crc16
from repro.errors import ConfigError
from repro.sim.config import SystemConfig


def short_tfcri_config() -> PaCRAMConfig:
    """A config whose t_FCRI is below tREFW, exercising the F/P machinery."""
    return PaCRAMConfig(module_id="S6", tras_factor=0.36,
                        nrh_reduction_ratio=0.5, nrh_reduced=3_900,
                        npcr=2, tfcri_ns=1e6)


class TestModeRegister:
    def test_starts_nominal(self):
        register = ModeRegister(32.0)
        assert register.current_tras_ns == 32.0
        assert register.writes == 0

    def test_counts_only_real_writes(self):
        register = ModeRegister(32.0)
        register.program(12.0)
        register.program(12.0)  # no-op
        register.program(32.0)
        assert register.writes == 2

    def test_rejects_out_of_range(self):
        register = ModeRegister(32.0)
        with pytest.raises(ConfigError):
            register.program(40.0)
        with pytest.raises(ConfigError):
            register.program(0.0)


class TestOnDiePaCRAM:
    def test_bank_granular_f_p(self):
        config = SystemConfig(num_cores=1)
        policy = OnDiePaCRAM(config, short_tfcri_config())
        _, full_first = policy.preventive_tras_ns(3, -1, 0.0)
        _, full_second = policy.preventive_tras_ns(3, -1, 1.0)
        assert full_first and not full_second

    def test_mode_register_traffic_counted(self):
        config = SystemConfig(num_cores=1)
        policy = OnDiePaCRAM(config, short_tfcri_config())
        policy.preventive_tras_ns(0, -1, 0.0)  # full (MR -> nominal no-op?)
        policy.preventive_tras_ns(0, -1, 1.0)  # partial (MR -> reduced)
        policy.preventive_tras_ns(0, -1, 2.0)  # partial (no-op)
        assert policy.mode_register_writes() >= 1

    def test_tfcri_reset(self):
        config = SystemConfig(num_cores=1)
        policy = OnDiePaCRAM(config, short_tfcri_config())
        policy.preventive_tras_ns(0, -1, 0.0)
        policy.preventive_tras_ns(0, -1, 1.0)
        _, full = policy.preventive_tras_ns(0, -1, 2e6)
        assert full

    def test_nrh_scale(self):
        config = SystemConfig(num_cores=1)
        policy = OnDiePaCRAM(config, short_tfcri_config())
        assert policy.nrh_scale() == pytest.approx(0.5)


class TestSelfManagingDRAM:
    def test_per_row_granularity_without_controller_state(self):
        config = SystemConfig(num_cores=1)
        policy = SelfManagingDRAMPaCRAM(config, short_tfcri_config())
        _, full_a = policy.preventive_tras_ns(0, 10, 0.0)
        _, full_b = policy.preventive_tras_ns(0, 10, 1.0)
        _, full_c = policy.preventive_tras_ns(0, 11, 2.0)
        assert full_a and not full_b
        assert full_c  # a different row still needs its first full restore
        assert SelfManagingDRAMPaCRAM.controller_area_mm2() == 0.0

    def test_footnote6_always_partial(self):
        config = SystemConfig(num_cores=1)
        policy = SelfManagingDRAMPaCRAM(
            config, PaCRAMConfig.from_catalog("H5", 0.36))
        _, full = policy.preventive_tras_ns(0, 10, 0.0)
        assert not full


class TestSpdRecord:
    def test_round_trip(self):
        record = SpdRecord.from_catalog("S6")
        decoded = SpdRecord.decode(record.encode())
        assert decoded == record

    def test_catalog_record_matches_table4(self):
        record = SpdRecord.from_catalog("S6")
        by_factor = {e.tras_factor: e for e in record.entries}
        assert by_factor[0.36].nrh == 3_900
        assert by_factor[0.36].npcr == 2_000
        assert 0.18 not in by_factor  # N/A cell not stored

    def test_boot_path_builds_config(self):
        record = SpdRecord.from_catalog("S6")
        config = record.to_pacram_config(0.36)
        reference = PaCRAMConfig.from_catalog("S6", 0.36)
        assert config == reference

    def test_corruption_detected(self):
        blob = bytearray(SpdRecord.from_catalog("H5").encode())
        blob[10] ^= 0xFF
        with pytest.raises(ConfigError, match="checksum"):
            SpdRecord.decode(bytes(blob))

    def test_truncation_detected(self):
        blob = SpdRecord.from_catalog("H5").encode()
        with pytest.raises(ConfigError):
            SpdRecord.decode(blob[:4])

    def test_unknown_operating_point_rejected(self):
        record = SpdRecord.from_catalog("S6")
        with pytest.raises(ConfigError):
            record.to_pacram_config(0.18)

    def test_crc16_known_vector(self):
        # CRC-16/XMODEM("123456789") = 0x31C3.
        assert crc16(b"123456789") == 0x31C3

    def test_entry_validation(self):
        with pytest.raises(ConfigError):
            SpdEntry(1.5, 100, 1)
        with pytest.raises(ConfigError):
            SpdEntry(0.5, 0, 1)


class TestOnlineProfiler:
    def test_batch_count_and_progress(self):
        profiler = OnlineProfiler()
        assert profiler.total_batches == 52  # ceil(65536 / 1270)
        assert profiler.progress == 0.0
        assert profiler.remaining_minutes() == pytest.approx(69.3, abs=0.5)

    def test_full_campaign(self):
        profiler = OnlineProfiler(rows_per_bank=4_000, rows_per_batch=1_270)
        covered = 0
        while not profiler.done:
            batch = profiler.next_batch()
            assert batch.blocked_bytes <= 1_270 * 8192
            covered += batch.row_count
            profiler.complete_batch(batch)
        assert covered == 4_000
        assert profiler.progress == 1.0

    def test_single_batch_in_flight(self):
        profiler = OnlineProfiler()
        profiler.next_batch()
        with pytest.raises(ConfigError):
            profiler.next_batch()

    def test_abort_reissues_same_rows(self):
        profiler = OnlineProfiler()
        first = profiler.next_batch()
        profiler.abort_batch()
        again = profiler.next_batch()
        assert again.first_row == first.first_row

    def test_done_refuses_more(self):
        profiler = OnlineProfiler(rows_per_bank=100, rows_per_batch=100)
        batch = profiler.next_batch()
        profiler.complete_batch(batch)
        with pytest.raises(ConfigError):
            profiler.next_batch()
