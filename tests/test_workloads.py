"""Tests for traces, synthetic generation, and the benchmark suites."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.workloads.suites import (
    WORKLOAD_SPECS,
    multicore_mixes,
    single_core_suite,
    workload_by_name,
    workload_spec,
)
from repro.workloads.synth import TraceSpec, generate_trace
from repro.workloads.trace import Trace


class TestTrace:
    def test_instruction_count(self):
        trace = Trace("t", np.array([4, 4]), np.array([False, True]),
                      np.array([1, 2]))
        assert trace.instructions == 10
        assert trace.mpki == pytest.approx(200.0)

    def test_write_fraction(self):
        trace = Trace("t", np.zeros(4, dtype=np.int64),
                      np.array([True, True, False, False]),
                      np.arange(4))
        assert trace.write_fraction == 0.5

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ConfigError):
            Trace("t", np.array([1]), np.array([False, True]), np.array([1]))

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            Trace("t", np.array([], dtype=np.int64),
                  np.array([], dtype=bool), np.array([], dtype=np.int64))

    def test_truncated_respects_budget(self):
        trace = Trace("t", np.full(100, 9, dtype=np.int64),
                      np.zeros(100, dtype=bool),
                      np.arange(100, dtype=np.int64))
        shorter = trace.truncated(55)
        assert shorter.instructions <= 60
        assert len(shorter) >= 1

    def test_npz_round_trip(self, tmp_path):
        trace = generate_trace(TraceSpec("x", 10.0, 0.5, 1024),
                               requests=200)
        path = tmp_path / "x.npz"
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.name == trace.name
        assert (loaded.addresses == trace.addresses).all()
        assert (loaded.bubbles == trace.bubbles).all()


class TestGenerateTrace:
    def test_deterministic(self):
        spec = TraceSpec("d", 10.0, 0.5, 2048)
        a = generate_trace(spec, requests=500, seed=1)
        b = generate_trace(spec, requests=500, seed=1)
        assert (a.addresses == b.addresses).all()

    def test_seed_changes_trace(self):
        spec = TraceSpec("d", 10.0, 0.5, 2048)
        a = generate_trace(spec, requests=500, seed=1)
        b = generate_trace(spec, requests=500, seed=2)
        assert (a.addresses != b.addresses).any()

    def test_mpki_approximated(self):
        for target in (2.0, 10.0, 35.0):
            spec = TraceSpec("m", target, 0.5, 2048)
            trace = generate_trace(spec, requests=8000, seed=3)
            assert trace.mpki == pytest.approx(target, rel=0.15)

    def test_write_fraction_approximated(self):
        spec = TraceSpec("w", 10.0, 0.5, 2048, write_fraction=0.4)
        trace = generate_trace(spec, requests=8000, seed=3)
        assert trace.write_fraction == pytest.approx(0.4, abs=0.03)

    def test_addresses_within_footprint(self):
        spec = TraceSpec("f", 10.0, 0.5, 777)
        trace = generate_trace(spec, requests=2000, seed=3)
        assert trace.addresses.min() >= 0
        assert trace.addresses.max() < 777

    def test_locality_increases_sequential_runs(self):
        low = generate_trace(TraceSpec("l", 10.0, 0.1, 4096),
                             requests=4000, seed=3)
        high = generate_trace(TraceSpec("h", 10.0, 0.9, 4096),
                              requests=4000, seed=3)

        def sequential_fraction(trace):
            diffs = np.diff(trace.addresses)
            return float((diffs == 1).mean())

        assert sequential_fraction(high) > sequential_fraction(low) + 0.3

    def test_hot_fraction_concentrates(self):
        spec = TraceSpec("hot", 10.0, 0.1, 65_536, hot_fraction=0.6,
                         hot_lines=32)
        trace = generate_trace(spec, requests=4000, seed=3)
        hot_hits = (trace.addresses < 32).mean()
        assert hot_hits > 0.4

    def test_validation(self):
        with pytest.raises(ConfigError):
            TraceSpec("x", -1.0, 0.5, 100)
        with pytest.raises(ConfigError):
            TraceSpec("x", 1.0, 1.5, 100)
        with pytest.raises(ConfigError):
            generate_trace(TraceSpec("x", 1.0, 0.5, 100), requests=0)


class TestSuites:
    def test_62_single_core_workloads(self):
        assert len(single_core_suite()) == 62
        assert len(set(single_core_suite())) == 62

    def test_60_mixes_of_four(self):
        mixes = multicore_mixes(60)
        assert len(mixes) == 60
        assert all(len(mix) == 4 for mix in mixes)

    def test_mixes_reference_known_workloads(self):
        names = set(single_core_suite())
        for mix in multicore_mixes(10):
            assert set(mix) <= names

    def test_mixes_deterministic(self):
        assert multicore_mixes(10) == multicore_mixes(10)

    def test_every_mix_has_memory_intensive_anchor(self):
        for mix in multicore_mixes(60):
            assert any(workload_spec(n).mpki >= 10.0 for n in mix)

    def test_suite_spans_intensity_range(self):
        mpkis = [spec.mpki for spec in WORKLOAD_SPECS]
        assert min(mpkis) < 1.0
        assert max(mpkis) > 30.0

    def test_all_five_suites_represented(self):
        prefixes = {name.split(".")[0] for name in single_core_suite()}
        assert prefixes == {"spec06", "spec17", "tpc", "media", "ycsb"}

    def test_workload_by_name(self):
        trace = workload_by_name("spec06.mcf", requests=100)
        assert trace.name == "spec06.mcf"
        assert len(trace) == 100

    def test_unknown_workload_rejected(self):
        with pytest.raises(ConfigError):
            workload_by_name("spec06.doom")
