"""Tests for the Appendix-C module catalog."""

import pytest

from repro.dram.catalog import (
    PACRAM_REFERENCE_MODULES,
    PACRAM_TRAS_FACTORS,
    ModuleSpec,
    all_module_ids,
    all_module_specs,
    module_spec,
    modules_by_manufacturer,
    total_chip_count,
)
from repro.dram.timing import TESTED_TRAS_FACTORS
from repro.dram.vendor import Manufacturer
from repro.errors import UnknownModuleError


class TestInventory:
    def test_thirty_modules(self):
        assert len(all_module_ids()) == 30

    def test_388_chips_total(self):
        # Table 1: the paper tests 388 real DDR4 chips.
        assert total_chip_count() == 388

    def test_vendor_split(self):
        assert len(modules_by_manufacturer("H")) == 9
        assert len(modules_by_manufacturer("M")) == 7
        assert len(modules_by_manufacturer("S")) == 14

    def test_unknown_module_rejected(self):
        with pytest.raises(UnknownModuleError):
            module_spec("Z9")

    def test_lookup_case_insensitive(self):
        assert module_spec("s6").module_id == "S6"


class TestTable3Data:
    def test_every_module_covers_all_factors(self):
        for spec in all_module_specs():
            for factor in TESTED_TRAS_FACTORS:
                assert factor in spec.lowest_nrh

    def test_h0_shows_no_bitflips(self):
        spec = module_spec("H0")
        assert not spec.vulnerable()
        assert all(v is None for v in spec.lowest_nrh.values())

    def test_s6_reference_values(self):
        # §8.3's worked example: S6 has N_RH 7.8K nominal, 3.9K at 0.27.
        spec = module_spec("S6")
        assert spec.nominal_nrh == 7_800
        assert spec.lowest_nrh[0.27] == 3_900
        assert spec.lowest_nrh[0.18] == 0  # retention bitflips

    def test_h5_reference_values(self):
        # §9.1's worked example: H5 at 10.2K nominal.
        assert module_spec("H5").nominal_nrh == 10_200

    def test_mfr_m_is_flat(self):
        # Fig. 7: Mfr. M modules barely change even at 0.18 tRAS.
        for spec in modules_by_manufacturer("M"):
            ratio = spec.nrh_ratio(0.18)
            assert ratio is not None and ratio >= 0.90

    def test_mfr_s_mostly_fails_at_smallest_latency(self):
        failing = [s for s in modules_by_manufacturer("S")
                   if s.lowest_nrh[0.18] == 0]
        assert len(failing) >= 12  # all but S2 in Table 3

    def test_ratios_normalized(self):
        spec = module_spec("S7")
        assert spec.nrh_ratio(1.00) == pytest.approx(1.0)
        assert spec.nrh_ratio(0.27) == pytest.approx(0.5, abs=0.01)


class TestTable4Data:
    def test_pacram_columns_complete(self):
        for spec in all_module_specs():
            for factor in PACRAM_TRAS_FACTORS:
                assert factor in spec.pacram

    def test_s6_worked_example(self):
        # §8.3: S6 at 0.36 tRAS has N_RH 3.9K and N_PCR 2K.
        params = module_spec("S6").pacram[0.36]
        assert params is not None
        assert params.nrh == 3_900
        assert params.npcr == 2_000

    def test_h5_worked_example(self):
        # §9.1: H5 refreshed 300 times at 0.27 tRAS -> N_RH 9.4K.
        params = module_spec("H5").pacram[0.27]
        assert params is not None
        assert params.nrh == 9_400
        assert params.npcr == 300

    def test_na_cells_match_retention_failures(self):
        # Wherever Table 3 reads 0 (retention bitflips), Table 4 is N/A.
        for spec in all_module_specs():
            if not spec.vulnerable():
                continue
            for factor in PACRAM_TRAS_FACTORS:
                if spec.lowest_nrh[factor] == 0:
                    assert spec.pacram[factor] is None, (
                        f"{spec.module_id}@{factor}")
                else:
                    assert spec.pacram[factor] is not None, (
                        f"{spec.module_id}@{factor}")


class TestReferenceModules:
    def test_pacram_h_m_s(self):
        # §9.1: PaCRAM-H/M/S use modules H5, M2, S6.
        assert PACRAM_REFERENCE_MODULES[Manufacturer.H] == "H5"
        assert PACRAM_REFERENCE_MODULES[Manufacturer.M] == "M2"
        assert PACRAM_REFERENCE_MODULES[Manufacturer.S] == "S6"

    def test_row_bits(self):
        assert ModuleSpec.row_bits() == 65_536
