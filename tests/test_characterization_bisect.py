"""Tests for the bi-section N_RH search."""

import pytest

from repro.characterization.bisect import bisect_threshold
from repro.errors import CharacterizationError


def step_function(threshold: int):
    """Flips appear exactly at ``threshold`` hammers."""
    def flips_at(hc: int) -> int:
        return 3 if hc >= threshold else 0
    return flips_at


class TestBisectThreshold:
    @pytest.mark.parametrize("true_nrh", [1, 999, 7_800, 56_200, 99_999])
    def test_converges_within_step(self, true_nrh):
        found = bisect_threshold(step_function(true_nrh))
        assert found is not None
        assert found >= true_nrh
        assert found - true_nrh <= 1_000  # hc_step resolution

    def test_invulnerable_returns_none(self):
        assert bisect_threshold(step_function(200_000)) is None

    def test_threshold_at_bound(self):
        assert bisect_threshold(step_function(100_000)) == 100_000

    def test_call_count_logarithmic(self):
        calls = 0

        def counting(hc: int) -> int:
            nonlocal calls
            calls += 1
            return 1 if hc >= 7_800 else 0

        bisect_threshold(counting)
        assert calls <= 10  # log2(100K / 1K) + initial check

    def test_custom_bounds(self):
        found = bisect_threshold(step_function(50), hc_high=1_000,
                                 hc_low=0, hc_step=10)
        assert found is not None
        assert abs(found - 50) <= 10

    def test_invalid_bounds_rejected(self):
        with pytest.raises(CharacterizationError):
            bisect_threshold(step_function(5), hc_high=10, hc_low=10)
        with pytest.raises(CharacterizationError):
            bisect_threshold(step_function(5), hc_step=0)

    def test_never_returns_non_flipping_count(self):
        # The returned N_RH always actually produced flips.
        flips = step_function(43_210)
        found = bisect_threshold(flips)
        assert found is not None
        assert flips(found) > 0
