"""Property-based tests on simulator invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mitigations import make_mitigation
from repro.sim.addrmap import AddressMapper
from repro.sim.config import SystemConfig
from repro.sim.controller import MemoryController
from repro.sim.request import Request, RequestType
from repro.sim.system import MemorySystem
from repro.workloads.trace import Trace

CONFIG = SystemConfig(num_cores=1)
MAPPER = AddressMapper(CONFIG)


@st.composite
def request_batches(draw):
    """A batch of requests with random addresses, arrivals, and types."""
    count = draw(st.integers(min_value=1, max_value=40))
    requests = []
    clock = 0.0
    for i in range(count):
        clock += draw(st.floats(min_value=0.0, max_value=50.0))
        line = draw(st.integers(min_value=0, max_value=1 << 20))
        is_write = draw(st.booleans())
        requests.append(Request(
            core=0, address=line,
            type=RequestType.WRITE if is_write else RequestType.READ,
            arrival_ns=clock, decoded=MAPPER.decode(line), position=i))
    return requests


def drain(controller: MemoryController, requests) -> list:
    for request in requests:
        controller.enqueue(request)
    serviced = []
    while controller.pending_requests():
        request = controller.service_one()
        if request is None:
            next_arrival = controller.next_arrival_ns()
            assert next_arrival is not None
            controller.advance_to(next_arrival)
            continue
        serviced.append(request)
    return serviced


@given(request_batches())
@settings(max_examples=40, deadline=None)
def test_controller_services_everything_once(requests):
    controller = MemoryController(SystemConfig(num_cores=1))
    serviced = drain(controller, list(requests))
    assert len(serviced) == len(requests)
    assert {id(r) for r in serviced} == {id(r) for r in requests}


@given(request_batches())
@settings(max_examples=40, deadline=None)
def test_completion_after_arrival_plus_cas(requests):
    config = SystemConfig(num_cores=1)
    controller = MemoryController(config)
    floor = MemoryController.FORWARD_LATENCY_NS
    for request in drain(controller, list(requests)):
        assert request.completion_ns >= request.arrival_ns + floor


@given(request_batches())
@settings(max_examples=40, deadline=None)
def test_stats_account_every_request(requests):
    controller = MemoryController(SystemConfig(num_cores=1))
    drain(controller, list(requests))
    stats = controller.stats
    assert stats.reads + stats.writes == len(requests)
    assert (stats.row_hits + stats.row_misses
            + stats.forwarded_reads) == len(requests)
    assert stats.activations == stats.row_misses


@given(request_batches())
@settings(max_examples=25, deadline=None)
def test_mitigated_controller_still_services_everything(requests):
    controller = MemoryController(SystemConfig(num_cores=1),
                                  mitigation=make_mitigation("RFM", 16))
    serviced = drain(controller, list(requests))
    assert len(serviced) == len(requests)


@given(st.integers(min_value=1, max_value=60),
       st.integers(min_value=0, max_value=30),
       st.integers(min_value=0, max_value=2**31))
@settings(max_examples=30, deadline=None)
def test_system_conserves_instructions(n_requests, mean_bubbles, seed):
    rng = np.random.default_rng(seed)
    trace = Trace(
        name="prop",
        bubbles=rng.integers(0, mean_bubbles + 1, size=n_requests),
        is_write=rng.random(n_requests) < 0.3,
        addresses=rng.integers(0, 1 << 16, size=n_requests),
    )
    result = MemorySystem(SystemConfig(num_cores=1), [trace]).run()
    assert result.total_instructions == trace.instructions
    assert result.controller_stats.reads == int((~trace.is_write).sum())
    assert result.controller_stats.writes == int(trace.is_write.sum())
    assert 0 < result.mean_ipc <= 4.0
