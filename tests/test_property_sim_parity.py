"""Property-based parity: the fast kernels are bit-exact with the oracle.

Hypothesis draws random trace shapes, core counts, mitigations (scalar and
batched variants), and N_RH values; for every draw the batched and array
kernels must produce the *identical* :class:`SimulationResult` as the
scalar oracle — same IPC, energy, latency summary, and every controller
counter — identical mitigation counters, and (separately) identical
observer event streams.
"""

from dataclasses import asdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mitigations import MITIGATION_CLASSES, make_mitigation
from repro.sim.config import SystemConfig
from repro.sim.system import MemorySystem
from repro.workloads.synth import TraceSpec, generate_trace


@st.composite
def sim_setups(draw):
    """(config, trace specs+seeds, mitigation name, nrh, batched?)."""
    num_cores = draw(st.integers(min_value=1, max_value=3))
    traces = []
    for i in range(num_cores):
        spec = TraceSpec(
            name=f"prop.{i}",
            mpki=draw(st.floats(min_value=2.0, max_value=60.0)),
            locality=draw(st.floats(min_value=0.0, max_value=0.95)),
            footprint_lines=draw(st.sampled_from([512, 4096, 65536])),
            write_fraction=draw(st.floats(min_value=0.0, max_value=0.8)),
            hot_fraction=draw(st.floats(min_value=0.0, max_value=0.6)),
            hot_lines=draw(st.sampled_from([16, 64])),
        )
        requests = draw(st.integers(min_value=20, max_value=400))
        seed = draw(st.integers(min_value=0, max_value=2**16))
        traces.append((spec, requests, seed))
    mitigation = draw(st.sampled_from(sorted(MITIGATION_CLASSES)))
    nrh = draw(st.sampled_from([16, 64, 512]))
    batched_mitigation = draw(st.booleans())
    return num_cores, traces, mitigation, nrh, batched_mitigation


def _build(setup, kernel):
    num_cores, trace_specs, mitigation, nrh, batched_mitigation = setup
    config = SystemConfig(num_cores=num_cores)
    traces = [generate_trace(spec, requests=requests, seed=seed)
              for spec, requests, seed in trace_specs]
    mechanism = make_mitigation(
        mitigation, nrh,
        batched=(batched_mitigation and kernel in ("batched", "array")),
        config=config)
    return config, traces, mechanism


@pytest.mark.parametrize("fast_kernel", ("batched", "array"))
@given(sim_setups())
@settings(max_examples=25, deadline=None)
def test_fast_kernel_matches_scalar_oracle(fast_kernel, setup):
    config, traces, mechanism_s = _build(setup, "scalar")
    scalar = MemorySystem(config, traces,
                          mitigation=mechanism_s).run("scalar")
    config, traces, mechanism_f = _build(setup, fast_kernel)
    fast = MemorySystem(config, traces,
                        mitigation=mechanism_f).run(fast_kernel)
    assert asdict(scalar) == asdict(fast)
    assert asdict(mechanism_s.counters) == asdict(mechanism_f.counters)


class _RecordingObserver:
    def __init__(self):
        self.events = []
        self.finalized = None

    def on_command(self, command):
        self.events.append(command)

    def finalize(self, end_ns):
        self.finalized = end_ns


@given(sim_setups())
@settings(max_examples=10, deadline=None)
def test_observer_event_streams_match(setup):
    streams = []
    for kernel in ("scalar", "batched", "array"):
        config, traces, mechanism = _build(setup, kernel)
        observer = _RecordingObserver()
        MemorySystem(config, traces, mitigation=mechanism,
                     observer=observer).run(kernel)
        streams.append(observer)
    for other in streams[1:]:
        assert streams[0].events == other.events
        assert streams[0].finalized == other.finalized
