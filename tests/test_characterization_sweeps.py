"""Tests for characterization sweeps — the calibration loop closure.

These are the key integration tests of the characterization stack: running
the paper's methodology against the simulated chips must *measure back* the
published Appendix-C values.
"""

import pytest

from repro.characterization.sweeps import characterize_module, sweep_npr
from repro.dram.catalog import module_spec


class TestCharacterizeModule:
    def test_measures_back_s6_curve(self):
        result = characterize_module(
            "S6", tras_factors=(1.0, 0.64, 0.36, 0.27), per_region=24)
        spec = module_spec("S6")
        nominal = result.lowest_nrh(1.0)
        assert nominal == pytest.approx(spec.nominal_nrh, rel=0.15)
        for factor in (0.64, 0.36, 0.27):
            measured_ratio = result.lowest_nrh(factor) / nominal
            published = spec.nrh_ratio(factor)
            assert measured_ratio == pytest.approx(published, abs=0.12), factor

    def test_measures_back_m_flatness(self):
        result = characterize_module("M2", tras_factors=(1.0, 0.18),
                                     per_region=12)
        ratio = result.lowest_nrh(0.18) / result.lowest_nrh(1.0)
        assert ratio >= 0.9

    def test_detects_retention_failure_factor(self):
        result = characterize_module("S6", tras_factors=(0.18,),
                                     per_region=16)
        assert result.lowest_nrh(0.18) == 0

    def test_invulnerable_module(self):
        result = characterize_module("H0", tras_factors=(1.0, 0.18),
                                     per_region=4)
        assert result.lowest_nrh(1.0) is None
        assert result.lowest_nrh(0.18) is None

    def test_always_includes_baseline(self):
        result = characterize_module("S6", tras_factors=(0.36,),
                                     per_region=4)
        assert result.at(tras_factor=1.0)  # baseline measured implicitly

    def test_reproducible(self):
        a = characterize_module("S7", tras_factors=(0.36,), per_region=4,
                                seed=9)
        b = characterize_module("S7", tras_factors=(0.36,), per_region=4,
                                seed=9)
        assert a.measurements == b.measurements


class TestSweepNpr:
    def test_s_decays_h_flat(self):
        results = sweep_npr(("S6", "H5"), tras_factors=(0.36,),
                            n_prs=(1, 1500), per_region=6)
        s6 = results["S6"]
        h5 = results["H5"]
        assert s6.lowest_nrh(0.36, 1500) < s6.lowest_nrh(0.36, 1)
        assert h5.lowest_nrh(0.36, 1500) == pytest.approx(
            h5.lowest_nrh(0.36, 1), rel=0.1)

    def test_beyond_npcr_retention_bitflips(self):
        # Fig. 12: S6 at 0.36 tRAS fails beyond ~2K consecutive restorations.
        results = sweep_npr(("S6",), tras_factors=(0.36,),
                            n_prs=(2_500,), per_region=8)
        assert results["S6"].lowest_nrh(0.36, 2_500) == 0
