"""Sweep tests: PaCRAM configuration over the full 30-module catalog."""

import pytest

from repro.core.config import PaCRAMConfig
from repro.core.spd import SpdRecord
from repro.dram.catalog import (
    PACRAM_TRAS_FACTORS,
    all_module_specs,
)
from repro.errors import ConfigError
from repro.units import MS


def applicable_cells():
    """Every (module, factor) with a Table-4 operating point."""
    for spec in all_module_specs():
        for factor in PACRAM_TRAS_FACTORS:
            if spec.pacram[factor] is not None:
                yield spec, factor


class TestCatalogWideConfigs:
    def test_every_applicable_cell_builds(self):
        cells = list(applicable_cells())
        assert len(cells) > 140  # most of the 30 x 6 grid is applicable
        for spec, factor in cells:
            config = PaCRAMConfig.from_catalog(spec.module_id, factor)
            assert config.nrh_reduced > 0
            assert config.tfcri_ns > 0

    def test_every_na_cell_rejects(self):
        for spec in all_module_specs():
            for factor in PACRAM_TRAS_FACTORS:
                if spec.pacram[factor] is None:
                    with pytest.raises(ConfigError):
                        PaCRAMConfig.from_catalog(spec.module_id, factor)

    def test_scaled_nrh_never_exceeds_configured(self):
        for spec, factor in applicable_cells():
            config = PaCRAMConfig.from_catalog(spec.module_id, factor)
            for nrh in (1024, 32):
                assert 1 <= config.scaled_nrh(nrh) <= nrh

    def test_tfcri_within_printed_tolerance(self):
        # Formula-vs-printed agreement across the catalog (the two known
        # outliers are single-digit printed values).
        mismatches = 0
        for spec, factor in applicable_cells():
            config = PaCRAMConfig.from_catalog(spec.module_id, factor)
            printed = spec.pacram[factor].tfcri_ns
            if abs(config.tfcri_ns - printed) / printed > 0.10:
                mismatches += 1
        assert mismatches <= 2

    def test_npcr_one_cells_have_sub_window_tfcri(self):
        # N_PCR = 1 cells reset every refresh: t_FCRI of a few hundred us
        # to a few ms, always far below a second.
        for spec, factor in applicable_cells():
            params = spec.pacram[factor]
            if params.npcr == 1:
                config = PaCRAMConfig.from_catalog(spec.module_id, factor)
                assert config.tfcri_ns < 10 * MS

    def test_spd_round_trip_all_modules(self):
        for spec in all_module_specs():
            if not spec.vulnerable():
                continue
            record = SpdRecord.from_catalog(spec.module_id)
            assert SpdRecord.decode(record.encode()) == record

    def test_best_observed_factors_applicable_for_references(self):
        # The §9.2 best-observed operating points must exist in Table 4.
        for module_id, factor in (("H5", 0.36), ("M2", 0.18), ("S6", 0.45)):
            config = PaCRAMConfig.from_catalog(module_id, factor)
            assert config.tras_factor == factor
