"""Tests for module geometry."""

import pytest

from repro.dram.geometry import ModuleGeometry, geometry_for_density
from repro.errors import ConfigError


class TestModuleGeometry:
    def test_defaults_consistent(self):
        geometry = ModuleGeometry()
        assert geometry.total_banks == 16
        assert geometry.total_rows == 16 * 65_536
        assert geometry.cells_per_row == 8192 * 8

    def test_capacity(self):
        geometry = ModuleGeometry()
        assert geometry.capacity_bytes == geometry.total_rows * 8192

    def test_valid_row_bounds(self):
        geometry = ModuleGeometry()
        assert geometry.valid_row(0, 0)
        assert geometry.valid_row(15, 65_535)
        assert not geometry.valid_row(16, 0)
        assert not geometry.valid_row(0, 65_536)
        assert not geometry.valid_row(-1, 0)

    def test_invalid_width_rejected(self):
        with pytest.raises(ConfigError):
            ModuleGeometry(device_width=5)

    def test_nonpositive_rejected(self):
        with pytest.raises(ConfigError):
            ModuleGeometry(rows_per_bank=0)


class TestGeometryForDensity:
    def test_8gb_reference(self):
        geometry = geometry_for_density(8, 8)
        assert geometry.rows_per_bank == 65_536

    def test_rows_scale_with_density(self):
        assert geometry_for_density(16, 8).rows_per_bank == 2 * 65_536
        assert geometry_for_density(4, 8).rows_per_bank == 65_536 // 2

    def test_chips_per_rank_from_width(self):
        assert geometry_for_density(8, 4).chips_per_rank == 16
        assert geometry_for_density(8, 8).chips_per_rank == 8
        assert geometry_for_density(8, 16).chips_per_rank == 4

    def test_appendix_b_densities(self):
        # The Fig. 19 sweep goes up to 512 Gb chips.
        geometry = geometry_for_density(512, 8)
        assert geometry.rows_per_bank == 64 * 65_536

    def test_invalid_density_rejected(self):
        with pytest.raises(ConfigError):
            geometry_for_density(0, 8)
