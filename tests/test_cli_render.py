"""Tests for the CLI and the ASCII renderer."""

import pytest

from repro.analysis.render import bar_chart, curve_table, sparkline
from repro.cli import main
from repro.errors import ConfigError


class TestSparkline:
    def test_monotone_series(self):
        assert sparkline([0, 1, 2, 3]) == "▁▃▆█"

    def test_constant_series(self):
        line = sparkline([5.0, 5.0, 5.0])
        assert len(line) == 3
        assert len(set(line)) == 1

    def test_length_matches_input(self):
        assert len(sparkline(list(range(17)))) == 17

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            sparkline([])


class TestBarChart:
    def test_renders_all_rows(self):
        chart = bar_chart({"a": 1.0, "bb": 2.0})
        assert chart.count("\n") == 1
        assert "a" in chart and "bb" in chart

    def test_peak_gets_full_width(self):
        chart = bar_chart({"x": 10.0}, width=20)
        assert "#" * 20 in chart

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            bar_chart({})


class TestCurveTable:
    def test_has_header_and_trend(self):
        table = curve_table({0.5: 1.0, 1.0: 2.0}, x_label="f", y_label="ipc")
        assert table.startswith("         f  ipc")
        assert "trend" in table


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig17+18" in out and "table4" in out

    def test_run_cheap_experiment(self, capsys):
        assert main(["run", "profiling"]) == 0
        assert "68.8" in capsys.readouterr().out

    def test_run_table(self, capsys):
        assert main(["run", "table1"]) == 0
        assert "388" in capsys.readouterr().out

    def test_run_writes_file(self, tmp_path, capsys):
        out_file = tmp_path / "result.txt"
        assert main(["run", "table4", "--out", str(out_file)]) == 0
        assert "374" in out_file.read_text()

    def test_catalog_overview(self, capsys):
        assert main(["catalog"]) == 0
        out = capsys.readouterr().out
        assert "S13" in out

    def test_catalog_module_detail(self, capsys):
        assert main(["catalog", "S6"]) == 0
        out = capsys.readouterr().out
        assert "K4A8G085WD-BCTD" in out
        assert "3900" in out

    def test_catalog_unknown_module_errors(self, capsys):
        assert main(["catalog", "Z9"]) == 1
        assert "error" in capsys.readouterr().err

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])

    def test_campaign_subcommand(self, tmp_path, capsys):
        result_dir = str(tmp_path / "camp")
        assert main(["campaign", "--dir", result_dir,
                     "--modules", "M2", "--rows", "4"]) == 0
        out = capsys.readouterr().out
        assert "done M2" in out
        assert "1/1" in out

    def test_campaign_status(self, tmp_path, capsys):
        result_dir = str(tmp_path / "camp")
        assert main(["campaign", "--dir", result_dir,
                     "--modules", "M2,S6", "--status"]) == 0
        assert "0/2" in capsys.readouterr().out

    def test_sweep_subcommand(self, tmp_path, capsys):
        result_dir = str(tmp_path / "sweep")
        assert main(["sweep", "--dir", result_dir,
                     "--mitigations", "Graphene", "--nrh", "128",
                     "--requests", "500"]) == 0
        out = capsys.readouterr().out
        assert "PaCRAM-H" in out

    def test_sweep_status(self, tmp_path, capsys):
        result_dir = str(tmp_path / "sweep")
        assert main(["sweep", "--dir", result_dir, "--status"]) == 0
        assert "0/" in capsys.readouterr().out
