"""Crash-resume and serial/parallel-parity tests for campaigns and sweeps.

The artifact workflow's promise is that an interrupted grid resumes to the
same results an uninterrupted run would have produced.  These tests
simulate the crash (a result file truncated mid-write) and check the full
contract: quarantine, re-run, and bit-identical row contents.
"""

import json

import pytest

from repro.analysis.sweeprunner import SweepGrid, SweepRunner
from repro.characterization.campaign import (
    CampaignConfig,
    CharacterizationCampaign,
)
from repro.errors import CharacterizationError
from repro.runtime import CORRUPT_SUFFIX, REPORT_NAME


def tiny_campaign(results_dir) -> CharacterizationCampaign:
    config = CampaignConfig(module_ids=("S6", "M2"),
                            tras_factors=(1.0, 0.36), per_region=2)
    return CharacterizationCampaign(results_dir, config)


def tiny_grid() -> SweepGrid:
    return SweepGrid(mitigations=("PARA",), nrh_values=(64,),
                     pacram_vendors=(None, "H"),
                     workload_sets=(("spec06.gcc",),), requests=400)


def result_bytes(directory) -> dict[str, bytes]:
    # run_report.json is run metadata (timings, retry counts), not a
    # result: byte-identity applies to the science, not the telemetry.
    return {p.name: p.read_bytes() for p in sorted(directory.glob("*.json"))
            if p.name != REPORT_NAME}


class TestCampaignCrashResume:
    def test_truncated_result_quarantined_and_rerun(self, tmp_path):
        reference = tiny_campaign(tmp_path / "ref")
        reference.run()

        crashed = tiny_campaign(tmp_path / "crashed")
        crashed.run()
        # Simulate a crash mid-write: truncate one persisted result.
        victim = crashed.result_path("S6")
        victim.write_bytes(victim.read_bytes()[:40])
        # The old existence-based status still says "done" — resume must
        # recover via quarantine + re-run, not crash in json.loads.
        assert crashed.is_done("S6")
        resumed = crashed.run()
        assert set(resumed) == {"S6", "M2"}
        quarantined = list((tmp_path / "crashed").glob(f"*{CORRUPT_SUFFIX}*"))
        assert len(quarantined) == 1
        assert result_bytes(tmp_path / "crashed") == \
            result_bytes(tmp_path / "ref")

    def test_load_reports_corrupt_file_as_library_error(self, tmp_path):
        campaign = tiny_campaign(tmp_path / "c")
        campaign.run()
        campaign.result_path("M2").write_text("{not json")
        with pytest.raises(CharacterizationError, match="invalid"):
            campaign.load()

    def test_parallel_campaign_matches_serial(self, tmp_path):
        tiny_campaign(tmp_path / "serial").run(jobs=1)
        tiny_campaign(tmp_path / "parallel").run(jobs=2)
        assert result_bytes(tmp_path / "parallel") == \
            result_bytes(tmp_path / "serial")


class TestSweepCrashResume:
    def test_truncated_row_quarantined_and_rerun(self, tmp_path):
        reference = SweepRunner(tmp_path / "ref", tiny_grid())
        reference.run()

        crashed = SweepRunner(tmp_path / "crashed", tiny_grid())
        crashed.run()
        victim = crashed.row_path(crashed.grid.points()[0])
        victim.write_bytes(victim.read_bytes()[:25])
        assert crashed.status() == (2, 2)  # atomicity is what makes this safe
        rows = crashed.run()
        assert len(rows) == 2
        assert list((tmp_path / "crashed").glob(f"*{CORRUPT_SUFFIX}*"))
        assert result_bytes(tmp_path / "crashed") == \
            result_bytes(tmp_path / "ref")

    def test_parallel_sweep_matches_serial(self, tmp_path):
        serial = SweepRunner(tmp_path / "serial", tiny_grid())
        parallel = SweepRunner(tmp_path / "parallel", tiny_grid())
        serial_rows = serial.run(jobs=1)
        parallel_rows = parallel.run(jobs=2)
        assert serial_rows == parallel_rows
        assert result_bytes(tmp_path / "parallel") == \
            result_bytes(tmp_path / "serial")

    def test_resume_after_partial_run_completes_grid(self, tmp_path):
        runner = SweepRunner(tmp_path / "sweep", tiny_grid())
        first_point = runner.grid.points()[0]
        runner.run_point(first_point)
        assert runner.status() == (1, 2)
        rows = runner.run(jobs=2)
        assert runner.status() == (2, 2)
        assert rows[0].key == first_point.key


class TestAggregateWithoutBaseline:
    def test_grid_without_baseline_skips_normalization(self, tmp_path):
        # A grid that legitimately omits the no-PaCRAM baseline must not
        # raise after the whole sweep already ran.
        grid = SweepGrid(mitigations=("PARA",), nrh_values=(64,),
                         pacram_vendors=("H",),
                         workload_sets=(("spec06.gcc",),), requests=400)
        runner = SweepRunner(tmp_path / "nobase", grid)
        assert runner.aggregate(runner.run()) == {}

    def test_grid_with_baseline_still_normalizes(self, tmp_path):
        runner = SweepRunner(tmp_path / "base", tiny_grid())
        aggregated = runner.aggregate(runner.run())
        assert ("PARA", "PaCRAM-H") in aggregated


class TestErrorLedger:
    def test_quarantine_is_ledgered(self, tmp_path):
        runner = SweepRunner(tmp_path / "sweep", tiny_grid())
        runner.run()
        victim = runner.row_path(runner.grid.points()[0])
        victim.write_text("garbage")
        runner.run()
        records = [json.loads(line) for line in
                   runner.ledger_path().read_text().splitlines()]
        assert any(r["action"] == "quarantine" for r in records)
