"""Tests for the fault-injection scenarios and the mutation matrix."""

import json

from repro.validation.faults import (
    ABSORBED,
    ALL_FAULTS,
    DETECTED,
    DroppedPreventiveRefresh,
    PartialRestorationBurst,
)
from repro.validation.matrix import run_matrix


class TestMatrix:
    def test_every_fault_detected_or_absorbed(self, tmp_path):
        report = run_matrix(tmp_path, seed=2025)
        failures = report.failures()
        assert report.all_covered, "\n" + report.summary()
        assert not failures
        assert len(report.results) == len(ALL_FAULTS)

    def test_matrix_report_round_trips(self, tmp_path):
        report = run_matrix(tmp_path / "run", seed=2025)
        out = tmp_path / "matrix.json"
        report.save(out)
        payload = json.loads(out.read_text())
        assert payload["all_covered"] is True
        assert payload["seed"] == 2025
        statuses = {r["fault"]: r["status"] for r in payload["results"]}
        assert statuses["partial-restoration-burst"] == ABSORBED
        assert all(status in (DETECTED, ABSORBED)
                   for status in statuses.values())
        assert "all covered" in report.summary()

    def test_expected_statuses_declared(self):
        names = [scenario.name for scenario in ALL_FAULTS]
        assert len(set(names)) == len(names)
        absorbed = [s.name for s in ALL_FAULTS if s.expected == ABSORBED]
        assert absorbed == ["partial-restoration-burst"]


class TestDeterminism:
    def test_same_seed_same_result(self, tmp_path):
        scenario = DroppedPreventiveRefresh()
        first = scenario.run(tmp_path / "a", seed=7)
        second = scenario.run(tmp_path / "b", seed=7)
        assert first == second  # includes the violation-count evidence

    def test_absorbed_scenario_reports_streak_bound(self, tmp_path):
        result = PartialRestorationBurst().run(tmp_path, seed=7)
        assert result.ok
        assert "N_PCR" in result.evidence
