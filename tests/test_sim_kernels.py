"""Batched system-simulation kernel: knob plumbing and bit-exact parity.

The batched kernel (:mod:`repro.sim.kernels`) is a performance
reimplementation of the scalar drain loop — the acceptance bar is that a
run's *entire* :class:`SimulationResult` (IPC, energy, latency summary,
every controller counter) and, with an observer attached, the full command
event stream are identical between kernels.  These tests pin that
contract on directed configurations; ``test_property_sim_parity.py``
fuzzes it.
"""

import pytest

from repro.analysis.runner import effective_sim_kernel
from repro.errors import ConfigError
from repro.exec.parity import assert_all_parity, assert_parity
from repro.mitigations import MITIGATION_CLASSES, make_mitigation
from repro.mitigations.batched import (
    BatchedGraphene,
    BatchedHydra,
    BatchedPARA,
)
from repro.sim.config import SystemConfig
from repro.sim.kernels import (
    SIM_KERNELS,
    default_sim_kernel,
    resolve_sim_kernel,
    set_default_sim_kernel,
)
from repro.sim.system import MemorySystem
from repro.workloads.synth import TraceSpec, generate_trace


def _trace(seed=3, requests=1200, **overrides):
    fields = dict(name="test.kernels", mpki=30.0, locality=0.5,
                  footprint_lines=4096, write_fraction=0.3)
    fields.update(overrides)
    return generate_trace(TraceSpec(**fields), requests=requests, seed=seed)


def _run_pair(config, trace_seeds, *, mitigation=None, nrh=256,
              batched_mitigation=False, policy_factory=None, **trace_kw):
    """Run identical systems through both kernels; return both results."""
    results = []
    for kernel in ("scalar", "batched"):
        traces = [_trace(seed=s, **trace_kw) for s in trace_seeds]
        batched = batched_mitigation and kernel == "batched"
        mechanism = (make_mitigation(mitigation, nrh, batched=batched,
                                     config=config)
                     if mitigation else None)
        policy = policy_factory(config) if policy_factory else None
        system = MemorySystem(config, traces, mitigation=mechanism,
                              policy=policy)
        results.append(system.run(kernel))
    return results


class TestKernelKnob:
    def test_known_kernels(self):
        assert SIM_KERNELS == ("scalar", "batched", "array")
        for kernel in SIM_KERNELS:
            assert resolve_sim_kernel(kernel) == kernel

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ConfigError):
            resolve_sim_kernel("turbo")

    def test_default_roundtrip(self):
        original = default_sim_kernel()
        try:
            set_default_sim_kernel("scalar")
            assert default_sim_kernel() == "scalar"
            with pytest.raises(ConfigError):
                set_default_sim_kernel("nope")
        finally:
            set_default_sim_kernel(original)

    def test_default_is_batched(self):
        assert default_sim_kernel() == "batched"

    def test_run_rejects_unknown_kernel(self, single_core_config):
        system = MemorySystem(single_core_config, [_trace(requests=10)])
        with pytest.raises(ConfigError):
            system.run("turbo")

    def test_checking_forces_scalar(self):
        assert effective_sim_kernel("batched", "strict") == "scalar"
        assert effective_sim_kernel("batched", "tolerant") == "scalar"
        assert effective_sim_kernel("batched", "off") == "batched"
        assert effective_sim_kernel(None, "off") == default_sim_kernel()

    def test_observer_defaults_to_scalar(self, single_core_config):
        observer = _RecordingObserver()
        system = MemorySystem(single_core_config, [_trace(requests=50)],
                              observer=observer)
        system.run()  # must not crash: implicit scalar under an observer
        assert observer.finalized is not None


class TestKernelParity:
    @pytest.mark.parametrize("mitigation", sorted(MITIGATION_CLASSES))
    def test_single_core_all_mitigations(self, single_core_config, mitigation):
        scalar, batched = _run_pair(single_core_config, [3],
                                    mitigation=mitigation)
        assert_parity(scalar, batched)

    @pytest.mark.parametrize("mitigation", ["PARA", "Hydra", "Graphene"])
    def test_batched_mitigation_variants(self, single_core_config, mitigation):
        scalar, batched = _run_pair(single_core_config, [3],
                                    mitigation=mitigation, nrh=64,
                                    batched_mitigation=True)
        assert_parity(scalar, batched)

    def test_multicore(self, quad_core_config):
        scalar, batched = _run_pair(quad_core_config, [1, 2, 3, 4],
                                    mitigation="PARA")
        assert_parity(scalar, batched)

    def test_write_heavy_forwarding(self, single_core_config):
        scalar, batched = _run_pair(single_core_config, [9],
                                    write_fraction=0.7, locality=0.2)
        assert_parity(scalar, batched)
        assert scalar.controller_stats.forwarded_reads > 0

    def test_pacram_policy(self, single_core_config):
        from repro.analysis.runner import pacram_reference_config
        from repro.core.pacram import PaCRAM

        pacram = pacram_reference_config("H")
        scalar, batched = _run_pair(
            single_core_config, [5], mitigation="PARA", nrh=8,
            policy_factory=lambda cfg: PaCRAM(cfg, pacram))
        assert_parity(scalar, batched)
        assert scalar.controller_stats.preventive_refresh_partial > 0

    def test_mitigation_counters(self, single_core_config):
        for kernel_mitigations in (False, True):
            traces_s = [_trace(seed=3)]
            traces_b = [_trace(seed=3)]
            ms = make_mitigation("Hydra", 64)
            mb = make_mitigation("Hydra", 64, batched=kernel_mitigations,
                                 config=single_core_config)
            MemorySystem(single_core_config, traces_s,
                         mitigation=ms).run("scalar")
            MemorySystem(single_core_config, traces_b,
                         mitigation=mb).run("batched")
            assert_parity(ms.counters, mb.counters)


class _RecordingObserver:
    """Observer that keeps the full command stream for comparison."""

    def __init__(self):
        self.events = []
        self.finalized = None

    def on_command(self, command):
        self.events.append(command)

    def finalize(self, end_ns):
        self.finalized = end_ns


class TestObserverStreamParity:
    @pytest.mark.parametrize("mitigation", ["PARA", "RFM", "Hydra"])
    def test_event_streams_identical(self, single_core_config, mitigation):
        streams = []
        for kernel in ("scalar", "batched"):
            observer = _RecordingObserver()
            system = MemorySystem(
                single_core_config, [_trace(seed=3)],
                mitigation=make_mitigation(mitigation, 64),
                observer=observer)
            system.run(kernel)
            streams.append(observer)
        assert_all_parity(streams[0].events, streams[1].events,
                          label="batched command stream")
        assert streams[0].finalized == streams[1].finalized
        assert len(streams[0].events) > 0


class TestBatchedMitigationUnits:
    def test_make_mitigation_selects_batched(self, single_core_config):
        assert isinstance(
            make_mitigation("PARA", 128, batched=True), BatchedPARA)
        assert isinstance(
            make_mitigation("Hydra", 128, batched=True,
                            config=single_core_config), BatchedHydra)
        assert isinstance(
            make_mitigation("Graphene", 128, batched=True,
                            config=single_core_config), BatchedGraphene)
        # No batched variant: fall back to the scalar class.
        assert type(make_mitigation("RFM", 128, batched=True)).__name__ == "RFM"
        assert type(make_mitigation("None", 128, batched=True)).__name__ \
            == "NoMitigation"

    def test_batched_para_draw_stream_matches_scalar(self):
        scalar = make_mitigation("PARA", 64)
        batched = make_mitigation("PARA", 64, batched=True)
        for i in range(5000):
            assert list(scalar.on_activation(0, i % 97, float(i))) \
                == list(batched.on_activation(0, i % 97, float(i)))

    def test_batched_hydra_geometry_validation(self):
        with pytest.raises(ConfigError):
            BatchedHydra(64, rows_per_bank=0)

    def test_batched_tables_reset_on_refresh_window(self):
        config = SystemConfig(num_cores=1)
        for name in ("Hydra", "Graphene"):
            scalar = make_mitigation(name, 32)
            batched = make_mitigation(name, 32, batched=True, config=config)
            for i in range(400):
                assert list(scalar.on_activation(1, i % 7, float(i))) \
                    == list(batched.on_activation(1, i % 7, float(i)))
            scalar.on_refresh_window(1e6)
            batched.on_refresh_window(1e6)
            for i in range(400):
                assert list(scalar.on_activation(1, i % 7, float(i))) \
                    == list(batched.on_activation(1, i % 7, float(i)))
