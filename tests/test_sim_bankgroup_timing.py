"""Tests for bank-group-aware CAS timing (tCCD_S / tCCD_L)."""

import pytest

from repro.dram.timing import TimingParams, ddr5_timing
from repro.errors import ConfigError
from repro.sim.bankmodel import ChannelTimeline


class TestTimingParams:
    def test_tccd_l_defaults_to_twice_short(self):
        timing = ddr5_timing()
        assert timing.tCCD_L == pytest.approx(2.0 * timing.tCCD)

    def test_explicit_tccd_l_kept(self):
        timing = TimingParams(
            standard="X", tRAS=32, tRP=14, tRCD=14, tCL=14, tWR=15,
            tRFC=195, tREFI=3900, tREFW=32e6, tBL=2.66, tCCD=2.5,
            tRRD=2.5, tFAW=10, tCCD_L=7.5)
        assert timing.tCCD_L == 7.5

    def test_tccd_l_shorter_than_short_rejected(self):
        with pytest.raises(ConfigError):
            TimingParams(
                standard="X", tRAS=32, tRP=14, tRCD=14, tCL=14, tWR=15,
                tRFC=195, tREFI=3900, tREFW=32e6, tBL=2.66, tCCD=2.5,
                tRRD=2.5, tFAW=10, tCCD_L=1.0)


class TestCasConstraint:
    def test_same_group_uses_long_spacing(self):
        channel = ChannelTimeline()
        first = channel.cas_constraint(100.0, bank_group=3,
                                       tccd_s_ns=2.5, tccd_l_ns=5.0)
        second = channel.cas_constraint(100.0, bank_group=3,
                                        tccd_s_ns=2.5, tccd_l_ns=5.0)
        assert first == 100.0
        assert second == pytest.approx(105.0)

    def test_different_group_uses_short_spacing(self):
        channel = ChannelTimeline()
        channel.cas_constraint(100.0, bank_group=3,
                               tccd_s_ns=2.5, tccd_l_ns=5.0)
        second = channel.cas_constraint(100.0, bank_group=4,
                                        tccd_s_ns=2.5, tccd_l_ns=5.0)
        assert second == pytest.approx(102.5)

    def test_no_constraint_when_idle(self):
        channel = ChannelTimeline()
        channel.cas_constraint(100.0, 0, 2.5, 5.0)
        late = channel.cas_constraint(500.0, 0, 2.5, 5.0)
        assert late == 500.0
