"""Tests for box statistics, tables, runner, and the experiment registry."""

import pytest

from repro.analysis.boxstats import BoxStats
from repro.analysis.experiments import EXPERIMENTS, experiment_ids, run_experiment
from repro.analysis.runner import (
    EVALUATED_NRH_VALUES,
    PACRAM_BEST_FACTORS,
    pacram_reference_config,
    run_simulation,
)
from repro.analysis.tables import (
    render_table1,
    render_table3,
    render_table4,
    table4_formula_check,
)
from repro.errors import CharacterizationError, ConfigError


class TestBoxStats:
    def test_five_number_summary(self):
        stats = BoxStats.from_values([1, 2, 3, 4, 5, 6, 7, 8])
        assert stats.minimum == 1
        assert stats.median == 4.5
        assert stats.maximum == 8
        assert stats.q1 == 2.5
        assert stats.q3 == 6.5

    def test_footnote4_quartiles_odd(self):
        # Footnote 4: quartiles are medians of the ordered halves.
        stats = BoxStats.from_values([1, 2, 3, 4, 5])
        assert stats.q1 == 1.5
        assert stats.q3 == 4.5
        assert stats.median == 3

    def test_single_value(self):
        stats = BoxStats.from_values([7.0])
        assert stats.minimum == stats.median == stats.maximum == 7.0
        assert stats.iqr == 0.0

    def test_unordered_input(self):
        stats = BoxStats.from_values([5, 1, 3])
        assert stats.minimum == 1 and stats.maximum == 5

    def test_empty_rejected(self):
        with pytest.raises(CharacterizationError):
            BoxStats.from_values([])

    def test_row_renders(self):
        assert "med=" in BoxStats.from_values([1.0, 2.0]).row()


class TestTables:
    def test_table1_lists_all_modules_and_388_chips(self):
        text = render_table1()
        assert "Total chips: 388" in text
        for module_id in ("H0", "M6", "S13"):
            assert module_id in text

    def test_table3_published_values(self):
        text = render_table3()
        assert "No bitflips" in text  # module H0
        assert "0 (retention)" in text  # red cells
        assert "7.8K" in text  # S6 nominal

    def test_table4_renders_na_cells(self):
        text = render_table4()
        assert "N/A" in text
        assert "374" in text  # S6 at 0.36 t_FCRI

    def test_formula_check_mostly_clean(self):
        # 28 of 30 modules match within 10 %; the two H outliers are the
        # paper's single-significant-digit printed values (1 ms / 2 ms).
        mismatches = table4_formula_check(tolerance=0.10)
        assert len(mismatches) <= 2
        assert all(m.startswith(("H2", "H3")) for m in mismatches)


class TestRunner:
    def test_best_factors(self):
        # §9.2 obs. 5: best-observed latencies per vendor.
        assert PACRAM_BEST_FACTORS == {"H": 0.36, "M": 0.18, "S": 0.45}

    def test_evaluated_nrh_values(self):
        assert EVALUATED_NRH_VALUES == (1024, 512, 256, 128, 64, 32)

    def test_reference_configs_resolve(self):
        for vendor in "HMS":
            config = pacram_reference_config(vendor)
            assert config.module_id in ("H5", "M2", "S6")

    def test_unknown_vendor_rejected(self):
        with pytest.raises(ConfigError):
            pacram_reference_config("X")

    def test_run_simulation_smoke(self):
        result = run_simulation(("spec06.gcc",), mitigation="PARA",
                                nrh=256, requests=800)
        assert result.mean_ipc > 0

    def test_run_simulation_with_pacram(self):
        pacram = pacram_reference_config("H")
        result = run_simulation(("spec06.gcc",), mitigation="PARA", nrh=64,
                                pacram=pacram, requests=800)
        assert result.controller_stats.preventive_refresh_partial > 0 or \
            result.controller_stats.preventive_refresh_rows == 0


class TestExperimentRegistry:
    def test_covers_every_table_and_figure(self):
        expected = {"table1", "table3", "table4", "fig3", "fig4", "fig6",
                    "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
                    "fig13", "fig14", "fig16", "fig17+18", "fig19",
                    "area", "profiling"}
        assert set(experiment_ids()) == expected

    def test_descriptions_nonempty(self):
        for experiment in EXPERIMENTS.values():
            assert experiment.description

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ConfigError):
            run_experiment("fig99")

    def test_cheap_experiments_run(self):
        assert "388" in run_experiment("table1")
        area = run_experiment("area")
        assert area["xeon_fraction"] == pytest.approx(0.0009, rel=0.05)
        cost = run_experiment("profiling")
        assert cost.bank_minutes == pytest.approx(68.8, abs=0.1)
