"""Chaos-harness regression tests (repro.validation.chaos).

Each scenario injects one deterministic runtime fault (killed worker,
hung worker, torn write, full disk, corrupted cache entry, ...) and
asserts the execution engine either absorbs it — completing with results
byte-identical to a fault-free run — or fails it in a classified,
attributable way.  A scenario whose status is ``missed`` means a
hardening guarantee regressed.
"""

from __future__ import annotations

import pytest

from repro.validation.chaos import ALL_CHAOS, run_chaos_matrix
from repro.validation.faults import MISSED

_SEED = 2025
_BY_NAME = {scenario.name: scenario for scenario in ALL_CHAOS}


def test_scenario_names_unique():
    assert len(_BY_NAME) == len(ALL_CHAOS)


@pytest.mark.parametrize("name", sorted(_BY_NAME))
def test_chaos_scenario_covered(name, tmp_path):
    scenario = _BY_NAME[name]
    result = scenario.run(tmp_path, seed=_SEED)
    assert result.status == scenario.expected, result.evidence
    assert result.status != MISSED, result.evidence


def test_chaos_matrix_all_covered(tmp_path):
    """The CLI entry point (`repro chaos`) over the full scenario set."""
    report = run_chaos_matrix(tmp_path, seed=_SEED)
    assert report.all_covered, report.summary()
    assert len(report.results) == len(ALL_CHAOS)
