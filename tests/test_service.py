"""The job layer: spec identity, store state machine, manager lifecycle.

Covers the characterization-as-a-service contracts below the wire:

- :class:`JobSpec` content-digest identity and the decode allow-list
  (hostile payloads cannot name arbitrary dataclasses or smuggle
  execution-context wire tags).
- :class:`JobStore` durable namespaces and the validated
  ``queued -> running -> done/failed`` state machine.
- :class:`JobManager` end-to-end: run, streamed-event ordering,
  digest-dedup with zero recomputation, the failed path, crash-resume of
  a half-finished job, and figure-on-demand byte-identity vs batch.
- The thin-adapter lint: campaign/sweeprunner must carry no private
  scheduler/ledger/report plumbing now that ``JobExecution`` owns it.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.figures import fig6_nrh_boxes_from
from repro.analysis.sweeprunner import (
    SweepGrid,
    SweepRunner,
    load_row,
    render_aggregate,
)
from repro.characterization.campaign import (
    CampaignConfig,
    CharacterizationCampaign,
)
from repro.errors import ConfigError
from repro.runtime import ProgressReporter
from repro.service import (
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    JobManager,
    JobSpec,
    JobStateError,
    JobStore,
)
from repro.service.jobs import validate_job_id
from repro.service.manager import EventLogProgress, replay_event


def tiny_grid(**overrides) -> SweepGrid:
    options = dict(mitigations=("PARA",), nrh_values=(64,),
                   pacram_vendors=(None, "H"),
                   workload_sets=(("spec06.mcf",),), requests=200)
    options.update(overrides)
    return SweepGrid(**options)


def tiny_campaign_config() -> CampaignConfig:
    return CampaignConfig(module_ids=("S6",), tras_factors=(1.0, 0.36),
                          per_region=2)


def row_bytes(directory: Path) -> dict[str, bytes]:
    return {p.name: p.read_bytes()
            for p in sorted(directory.glob("*.json"))
            if p.name != "run_report.json"}


# ----------------------------------------------------------------------
# JobSpec: identity and decoding
# ----------------------------------------------------------------------
class TestJobSpec:
    def test_identical_configs_share_an_id(self):
        a = JobSpec("sweep", tiny_grid())
        b = JobSpec("sweep", tiny_grid())
        assert a.job_id == b.job_id
        validate_job_id(a.job_id)

    def test_id_covers_the_config(self):
        base = JobSpec("sweep", tiny_grid())
        assert base.job_id != JobSpec("sweep",
                                      tiny_grid(requests=300)).job_id
        assert base.job_id != JobSpec(
            "sweep", tiny_grid(nrh_values=(1024,))).job_id

    def test_kinds_do_not_collide(self):
        campaign = JobSpec("campaign", tiny_campaign_config())
        sweep = JobSpec("sweep", tiny_grid())
        assert campaign.job_id != sweep.job_id

    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigError, match="job kind"):
            JobSpec("audit", tiny_grid())

    def test_round_trips_through_the_wire_encoding(self):
        spec = JobSpec("sweep", tiny_grid())
        clone = JobSpec.decode(spec.encoded())
        assert clone.job_id == spec.job_id
        assert clone.config == spec.config

    def test_decode_requires_the_envelope(self):
        with pytest.raises(ConfigError, match="kind"):
            JobSpec.decode({"config": {}})
        with pytest.raises(ConfigError, match="kind"):
            JobSpec.decode(["sweep"])

    def test_decode_rejects_unlisted_dataclasses(self):
        payload = JobSpec("sweep", tiny_grid()).encoded()
        payload["config"]["__dc"] = "repro.exec:ExecutionPolicy"
        with pytest.raises(ConfigError, match="disallowed type"):
            JobSpec.decode(payload)

    @pytest.mark.parametrize("tag", ["__blob", "__task_path", "__p"])
    def test_decode_rejects_execution_context_tags(self, tag):
        payload = JobSpec("sweep", tiny_grid()).encoded()
        payload["config"][tag] = "smuggled"
        with pytest.raises(ConfigError, match="wire tag"):
            JobSpec.decode(payload)

    def test_decode_scans_nested_payloads(self):
        payload = JobSpec("sweep", tiny_grid()).encoded()
        payload["config"]["workload_sets"] = [
            [{"__dc": "os:system"}]]
        with pytest.raises(ConfigError, match="disallowed type"):
            JobSpec.decode(payload)


class TestValidateJobId:
    def test_accepts_a_digest(self):
        assert validate_job_id("0123456789abcdef") == "0123456789abcdef"

    @pytest.mark.parametrize("bad", [
        "../0123456789abcd",          # path traversal
        "0123456789ABCDEF",           # uppercase
        "0123456789abcde",            # short
        "0123456789abcdef0",          # long
        "0123456789abcde/",           # separator
        "",
        1234,
        None,
    ])
    def test_rejects_everything_else(self, bad):
        with pytest.raises(ConfigError, match="malformed job id"):
            validate_job_id(bad)


# ----------------------------------------------------------------------
# JobStore: durable records + state machine
# ----------------------------------------------------------------------
class TestJobStore:
    def store(self, tmp_path) -> JobStore:
        self.now = [100.0]
        return JobStore(tmp_path / "jobs", clock=lambda: self.now[0])

    def test_submit_creates_a_queued_record(self, tmp_path):
        store = self.store(tmp_path)
        record, created = store.submit(JobSpec("sweep", tiny_grid()))
        assert created
        assert record.state == QUEUED
        assert record.history == [[QUEUED, 100.0]]
        assert store.record_path(record.job_id).exists()
        assert store.list_ids() == (record.job_id,)

    def test_resubmission_dedups(self, tmp_path):
        store = self.store(tmp_path)
        first, _ = store.submit(JobSpec("sweep", tiny_grid()))
        self.now[0] = 200.0
        second, created = store.submit(JobSpec("sweep", tiny_grid()))
        assert not created
        assert second.job_id == first.job_id
        assert second.created_at == 100.0  # nothing was rewritten

    def test_lifecycle_transitions(self, tmp_path):
        store = self.store(tmp_path)
        record, _ = store.submit(JobSpec("sweep", tiny_grid()))
        job_id = record.job_id
        assert store.transition(job_id, RUNNING).state == RUNNING
        done = store.transition(job_id, DONE)
        assert done.state == DONE
        assert [s for s, _ in done.history] == [QUEUED, RUNNING, DONE]

    def test_done_is_terminal(self, tmp_path):
        store = self.store(tmp_path)
        record, _ = store.submit(JobSpec("sweep", tiny_grid()))
        store.transition(record.job_id, RUNNING)
        store.transition(record.job_id, DONE)
        with pytest.raises(JobStateError, match="terminal"):
            store.transition(record.job_id, QUEUED)

    def test_illegal_edges_rejected(self, tmp_path):
        store = self.store(tmp_path)
        record, _ = store.submit(JobSpec("sweep", tiny_grid()))
        with pytest.raises(JobStateError, match="queued -> done"):
            store.transition(record.job_id, DONE)
        with pytest.raises(ConfigError, match="job state"):
            store.transition(record.job_id, "paused")

    def test_orphaned_running_job_can_requeue(self, tmp_path):
        store = self.store(tmp_path)
        record, _ = store.submit(JobSpec("sweep", tiny_grid()))
        store.transition(record.job_id, RUNNING)
        assert store.transition(record.job_id, QUEUED).state == QUEUED

    def test_failed_records_the_error_and_retry_clears_it(self, tmp_path):
        store = self.store(tmp_path)
        record, _ = store.submit(JobSpec("sweep", tiny_grid()))
        store.transition(record.job_id, RUNNING)
        failed = store.transition(record.job_id, FAILED,
                                  error="ValueError: boom")
        assert failed.error == "ValueError: boom"
        retried = store.transition(record.job_id, QUEUED)
        assert retried.error is None

    def test_load_unknown_job(self, tmp_path):
        store = self.store(tmp_path)
        with pytest.raises(ConfigError, match="unknown job"):
            store.load("0123456789abcdef")

    def test_load_corrupt_record(self, tmp_path):
        store = self.store(tmp_path)
        record, _ = store.submit(JobSpec("sweep", tiny_grid()))
        store.record_path(record.job_id).write_text("{ not json")
        with pytest.raises(ConfigError, match="unreadable job record"):
            store.load(record.job_id)

    def test_load_rejects_id_mismatch(self, tmp_path):
        store = self.store(tmp_path)
        record, _ = store.submit(JobSpec("sweep", tiny_grid()))
        imposter = "f" * 16
        imposter_dir = store.namespace(imposter)
        imposter_dir.mkdir(parents=True)
        (imposter_dir / "job.json").write_bytes(
            store.record_path(record.job_id).read_bytes())
        with pytest.raises(ConfigError, match="claims id"):
            store.load(imposter)

    def test_record_survives_reload(self, tmp_path):
        store = self.store(tmp_path)
        record, _ = store.submit(JobSpec("sweep", tiny_grid()))
        fresh = JobStore(tmp_path / "jobs")
        loaded = fresh.load(record.job_id)
        assert loaded.spec == record.spec
        assert loaded.spec_obj().config == tiny_grid()


# ----------------------------------------------------------------------
# Event log + replay
# ----------------------------------------------------------------------
class _Recorder(ProgressReporter):
    def __init__(self):
        self.calls = []

    def start(self, total, reused=0):
        self.calls.append(("start", total, reused))

    def task_done(self, key, *, worker=None):
        self.calls.append(("task_done", key, worker))

    def task_retry(self, key, attempt, error, *,
                   classification="transient"):
        self.calls.append(("task_retry", key, attempt, error,
                           classification))

    def finish(self):
        self.calls.append(("finish",))


class TestEventLog:
    def test_sequences_are_contiguous(self, tmp_path):
        log = EventLogProgress(tmp_path / "events.jsonl",
                               clock=lambda: 1.0)
        log.start(3, reused=1)
        log.task_done("a", worker="w0")
        log.task_retry("b", 2, "boom", classification="transient")
        log.finish()
        log.close()
        events = [json.loads(line) for line
                  in (tmp_path / "events.jsonl").read_text().splitlines()]
        assert [e["seq"] for e in events] == [0, 1, 2, 3]
        assert [e["event"] for e in events] == [
            "start", "task_done", "task_retry", "finish"]

    def test_reopening_truncates(self, tmp_path):
        path = tmp_path / "events.jsonl"
        first = EventLogProgress(path)
        first.start(5)
        first.finish()
        first.close()
        second = EventLogProgress(path)
        second.start(2)
        second.close()
        events = [json.loads(line)
                  for line in path.read_text().splitlines()]
        assert [e["seq"] for e in events] == [0]
        assert events[0]["total"] == 2

    def test_replay_maps_events_onto_hooks(self, tmp_path):
        log = EventLogProgress(tmp_path / "events.jsonl")
        log.start(2, reused=1)
        log.task_done("point-a", worker="w1")
        log.finish()
        log.close()
        recorder = _Recorder()
        for line in (tmp_path / "events.jsonl").read_text().splitlines():
            replay_event(recorder, json.loads(line))
        assert recorder.calls == [("start", 2, 1),
                                  ("task_done", "point-a", "w1"),
                                  ("finish",)]

    def test_replay_ignores_unknown_and_malformed_events(self):
        recorder = _Recorder()
        replay_event(recorder, {"event": "from_the_future", "seq": 0})
        replay_event(recorder, {"event": "task_done"})  # missing key
        replay_event(recorder, {"no_event": True})
        assert recorder.calls == []


# ----------------------------------------------------------------------
# JobManager: end-to-end lifecycle
# ----------------------------------------------------------------------
class TestJobManagerSweep:
    def test_run_and_streamed_event_ordering(self, tmp_path):
        manager = JobManager(tmp_path / "jobs")
        grid = tiny_grid()
        record, created = manager.submit(JobSpec("sweep", grid))
        assert created
        recorder = _Recorder()
        final = manager.run(record.job_id, progress=recorder)
        assert final.state == DONE

        events = [json.loads(line) for line in
                  manager.store.events_path(record.job_id)
                  .read_text().splitlines()]
        assert [e["seq"] for e in events] == list(range(len(events)))
        assert events[0]["event"] == "start"
        assert events[0]["total"] == len(grid.points())
        assert events[-1]["event"] == "finish"
        done_keys = {e["key"] for e in events
                     if e["event"] == "task_done"}
        assert done_keys == {p.key for p in grid.points()}
        # The live reporter saw the same stream the log captured.
        assert [c[0] for c in recorder.calls] \
            == [e["event"] for e in events]

    def test_results_match_a_batch_run_byte_for_byte(self, tmp_path):
        grid = tiny_grid()
        batch = SweepRunner(tmp_path / "batch", grid)
        batch.run(jobs=1)

        manager = JobManager(tmp_path / "jobs")
        record, _ = manager.submit(JobSpec("sweep", grid))
        manager.run(record.job_id)
        served = manager.result_files(record.job_id)
        assert served == row_bytes(tmp_path / "batch")
        assert "run_report.json" not in served
        assert "errors.jsonl" not in served

    def test_dedup_recomputes_nothing(self, tmp_path):
        manager = JobManager(tmp_path / "jobs")
        record, _ = manager.submit(JobSpec("sweep", tiny_grid()))
        manager.run(record.job_id)
        results_dir = manager.store.results_dir(record.job_id)
        stamps = {p.name: p.stat().st_mtime_ns
                  for p in results_dir.glob("*.json")}
        assert stamps

        again, created = manager.submit(JobSpec("sweep", tiny_grid()))
        assert not created
        assert again.job_id == record.job_id
        final = manager.run(again.job_id)
        assert final.state == DONE
        assert {p.name: p.stat().st_mtime_ns
                for p in results_dir.glob("*.json")} == stamps

    def test_failure_is_recorded_and_retry_resumes(self, tmp_path):
        class Sabotage(ProgressReporter):
            def start(self, total, reused=0):
                raise RuntimeError("wired to fail")

        manager = JobManager(tmp_path / "jobs")
        record, _ = manager.submit(JobSpec("sweep", tiny_grid()))
        with pytest.raises(RuntimeError, match="wired to fail"):
            manager.run(record.job_id, progress=Sabotage())
        failed = manager.status(record.job_id)
        assert failed.state == FAILED
        assert failed.error == "RuntimeError: wired to fail"

        final = manager.run(record.job_id)  # failed -> queued -> ... -> done
        assert final.state == DONE
        assert final.error is None

    def test_crash_resume_computes_only_whats_missing(self, tmp_path):
        grid = tiny_grid()
        reference = SweepRunner(tmp_path / "reference", grid)
        reference.run(jobs=1)

        manager = JobManager(tmp_path / "jobs")
        record, _ = manager.submit(JobSpec("sweep", grid))
        # Simulate a runner that crashed after finishing one point: its
        # row is on disk, the record is orphaned in ``running``.
        partial = SweepRunner(manager.store.results_dir(record.job_id),
                              grid)
        first_point = grid.points()[0]
        partial.run_point(first_point)
        manager.store.transition(record.job_id, RUNNING)
        stamp = partial.row_path(first_point).stat().st_mtime_ns

        final = manager.run(record.job_id)
        assert final.state == DONE
        # The surviving row was reused, not recomputed...
        assert partial.row_path(first_point).stat().st_mtime_ns == stamp
        # ...and the resumed job's rows match a clean batch run exactly.
        assert manager.result_files(record.job_id) \
            == row_bytes(tmp_path / "reference")

    def test_figure_matches_the_batch_renderer(self, tmp_path):
        grid = tiny_grid()
        batch = SweepRunner(tmp_path / "batch", grid)
        batch.run(jobs=1)
        expected = render_aggregate(batch.aggregate(
            [load_row(batch.row_path(p)) for p in grid.points()]))

        manager = JobManager(tmp_path / "jobs")
        record, _ = manager.submit(JobSpec("sweep", grid))
        manager.run(record.job_id)
        assert manager.figure(record.job_id, "fig17") == expected

    def test_figure_gates(self, tmp_path):
        manager = JobManager(tmp_path / "jobs")
        record, _ = manager.submit(JobSpec("sweep", tiny_grid()))
        with pytest.raises(ConfigError, match="not done"):
            manager.figure(record.job_id, "fig17")
        manager.run(record.job_id)
        with pytest.raises(ConfigError, match="render"):
            manager.figure(record.job_id, "fig6")

    def test_concurrent_claim_of_an_active_job_rejected(self, tmp_path):
        manager = JobManager(tmp_path / "jobs")
        record, _ = manager.submit(JobSpec("sweep", tiny_grid()))
        manager._active.add(record.job_id)
        try:
            with pytest.raises(ConfigError, match="already running"):
                manager.run(record.job_id)
        finally:
            manager._active.discard(record.job_id)
        assert manager.status(record.job_id).state == QUEUED


class TestJobManagerCampaign:
    def test_campaign_job_matches_batch_and_renders_fig6(self, tmp_path):
        config = tiny_campaign_config()
        batch = CharacterizationCampaign(tmp_path / "batch", config)
        batch.run(jobs=1)
        expected = repr(fig6_nrh_boxes_from(
            batch.load(), tras_factors=config.tras_factors))

        manager = JobManager(tmp_path / "jobs")
        record, _ = manager.submit(JobSpec("campaign", config))
        final = manager.run(record.job_id)
        assert final.state == DONE
        assert manager.result_files(record.job_id) \
            == row_bytes(tmp_path / "batch")
        assert manager.figure(record.job_id, "fig6") == expected
        with pytest.raises(ConfigError, match="render"):
            manager.figure(record.job_id, "fig17")


# ----------------------------------------------------------------------
# Thin-adapter lint: no private plumbing in the orchestrators
# ----------------------------------------------------------------------
SRC_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Plumbing that now lives in ``repro.service.execution`` only.  The
#: orchestrators delegate; reintroducing any of these tokens means the
#: refactor regressed into a second copy of the execution layer.
PLUMBING_TOKENS = (
    "TaskPool",
    "make_scheduler",
    "LEDGER_NAME",
    "REPORT_NAME",
    "clear_disk_tiers",
    "describe_run_report",
    "summarize_caches",
    "_pool(",
)

ADAPTERS = (
    SRC_ROOT / "characterization" / "campaign.py",
    SRC_ROOT / "analysis" / "sweeprunner.py",
)


class TestThinAdapters:
    @pytest.mark.parametrize(
        "path", ADAPTERS, ids=lambda p: p.name)
    def test_orchestrators_carry_no_execution_plumbing(self, path):
        text = path.read_text()
        offenders = [token for token in PLUMBING_TOKENS if token in text]
        assert not offenders, (
            f"{path.name} reaches around JobExecution via {offenders}; "
            "route scheduler/ledger/report/cache plumbing through "
            "repro.service.execution instead")

    def test_the_plumbing_does_live_in_the_execution_layer(self):
        text = (SRC_ROOT / "service" / "execution.py").read_text()
        for token in ("make_scheduler", "LEDGER_NAME", "REPORT_NAME",
                      "clear_disk_tiers"):
            assert token in text
