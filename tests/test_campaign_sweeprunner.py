"""Tests for the campaign and sweep runners (the artifact workflow)."""

import pytest

from repro.analysis.sweeprunner import SweepGrid, SweepPoint, SweepRunner
from repro.characterization.campaign import (
    CampaignConfig,
    CharacterizationCampaign,
)
from repro.errors import CharacterizationError, ConfigError


def tiny_campaign(tmp_path) -> CharacterizationCampaign:
    config = CampaignConfig(module_ids=("S6", "M2"),
                            tras_factors=(1.0, 0.36),
                            per_region=4)
    return CharacterizationCampaign(tmp_path / "results", config)


class TestCharacterizationCampaign:
    def test_run_persists_and_reloads(self, tmp_path):
        campaign = tiny_campaign(tmp_path)
        results = campaign.run()
        assert set(results) == {"S6", "M2"}
        assert campaign.pending_modules() == ()
        reloaded = campaign.load()
        assert reloaded["S6"].measurements == results["S6"].measurements

    def test_resume_skips_done_modules(self, tmp_path):
        campaign = tiny_campaign(tmp_path)
        campaign.run_module("S6")
        assert campaign.pending_modules() == ("M2",)
        # Re-running S6 loads from disk (same results, no recompute drift).
        again = campaign.run_module("S6")
        assert again.module_id == "S6"

    def test_load_incomplete_rejected(self, tmp_path):
        campaign = tiny_campaign(tmp_path)
        with pytest.raises(CharacterizationError, match="incomplete"):
            campaign.load()

    def test_unknown_module_rejected(self, tmp_path):
        campaign = tiny_campaign(tmp_path)
        with pytest.raises(CharacterizationError):
            campaign.run_module("H5")

    def test_summary_reports_progress(self, tmp_path):
        campaign = tiny_campaign(tmp_path)
        assert "0/2" in campaign.summary()
        campaign.run_module("S6")
        assert "1/2" in campaign.summary()

    def test_config_validation(self):
        with pytest.raises(CharacterizationError):
            CampaignConfig(module_ids=())
        with pytest.raises(CharacterizationError):
            CampaignConfig(per_region=0)


def tiny_grid() -> SweepGrid:
    return SweepGrid(mitigations=("PARA",), nrh_values=(64,),
                     pacram_vendors=(None, "H"),
                     workload_sets=(("spec06.gcc",),), requests=600)


class TestSweepRunner:
    def test_grid_enumeration(self):
        points = tiny_grid().points()
        assert len(points) == 2
        assert {p.pacram_vendor for p in points} == {None, "H"}

    def test_run_persists_rows(self, tmp_path):
        runner = SweepRunner(tmp_path / "ram", tiny_grid())
        rows = runner.run()
        assert len(rows) == 2
        assert runner.status() == (2, 2)

    def test_resume_reuses_rows(self, tmp_path):
        runner = SweepRunner(tmp_path / "ram", tiny_grid())
        first = runner.run()
        second = runner.run()  # loaded from disk
        assert [r.mean_ipc for r in first] == [r.mean_ipc for r in second]

    def test_aggregate_normalizes_against_no_pacram(self, tmp_path):
        runner = SweepRunner(tmp_path / "ram", tiny_grid())
        aggregated = runner.aggregate()
        assert ("PARA", "PaCRAM-H") in aggregated
        value = aggregated[("PARA", "PaCRAM-H")][64]
        assert 0.5 < value < 2.0

    def test_point_keys_unique(self):
        grid = SweepGrid(mitigations=("PARA", "RFM"), nrh_values=(64, 32),
                         pacram_vendors=(None, "H", "S"),
                         workload_sets=(("a",), ("b",)))
        keys = [p.key for p in grid.points()]
        assert len(keys) == len(set(keys))

    def test_empty_grid_rejected(self):
        with pytest.raises(ConfigError):
            SweepGrid(mitigations=()).points()

    def test_sweep_point_key_format(self):
        point = SweepPoint("PARA", 64, None, ("x", "y"))
        prefix, digest = point.key.rsplit("_", 1)
        assert prefix == "PARA_nrh64_none_x+y"
        assert len(digest) == 8
        int(digest, 16)  # hash suffix is hex

    def test_sweep_point_key_sanitized(self):
        # Vendors/workloads with separators must not corrupt row paths.
        point = SweepPoint("PA_RA", 64, "H+/..", ("a/b", "c_d"))
        stem = point.key.rsplit("_", 1)[0]
        assert "/" not in point.key and "+" not in stem.split("_", 3)[2]
        assert set(point.key) <= set(
            "abcdefghijklmnopqrstuvwxyz"
            "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._+-")

    def test_sweep_point_keys_distinguish_sanitized_collisions(self):
        # The hash suffix keeps raw points apart even when the readable
        # prefixes collide after sanitization.
        none_vendor = SweepPoint("PARA", 64, None, ("w",))
        literal_none = SweepPoint("PARA", 64, "none", ("w",))
        assert none_vendor.key != literal_none.key
        joined = SweepPoint("PARA", 64, "H", ("a_b",))
        split = SweepPoint("PARA", 64, "H", ("a", "b"))
        assert joined.key != split.key
