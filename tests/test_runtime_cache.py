"""The shared DigestCache: one memo implementation, one ``--force``.

Unit tests for :mod:`repro.runtime.cache` plus property tests pinning that
the thin instantiations (:class:`ProbeCache`, :class:`BaselineCache`)
invalidate on digest drift *identically* — same hits, misses,
invalidations, and surviving entries for any interleaving of operations.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.baselines import BaselineCache, baseline_code_digest
from repro.characterization.probecache import ProbeCache
from repro.runtime.cache import (
    DigestCache,
    cache_counters,
    clear_disk_tiers,
    disk_tier_entries,
    registered_tiers,
    reset_cache_counters,
    summarize_caches,
)
from repro.validation.physics import model_digest


class _PlainCache(DigestCache):
    """Counter-isolated instantiation with no disk tier."""

    name = "test-plain"
    tier_subdir = None


class _DiskCache(DigestCache):
    """Disk-backed instantiation using the base codec.

    ``tier_subdir`` stays ``None`` so this test-only cache never joins the
    ``--force`` registry (which other tests assert the exact contents of);
    the disk tier itself only needs ``disk_dir``.
    """

    name = "test-disk"
    tier_subdir = None
    file_prefix = "entry"


class TestDigestCacheCore:
    def test_basic_memoization(self):
        cache = _PlainCache(maxsize=8)
        cache.ensure("d1")
        assert cache.get("k") is None
        cache.put("k", {"v": 1})
        assert cache.get("k") == {"v": 1}
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction_order(self):
        cache = _PlainCache(maxsize=2)
        cache.ensure("d")
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a; b is now the oldest
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3

    def test_first_bind_is_not_an_invalidation(self):
        cache = _PlainCache(maxsize=4)
        cache.ensure("d1")
        assert cache.invalidations == 0
        cache.ensure("d1")
        assert cache.invalidations == 0
        cache.ensure("d2")
        assert cache.invalidations == 1

    def test_maxsize_validated(self):
        with pytest.raises(ValueError):
            _PlainCache(maxsize=0)

    def test_stats_shape(self):
        cache = _PlainCache(maxsize=4)
        cache.ensure("d")
        cache.put("k", 1)
        cache.get("k")
        cache.get("missing")
        stats = cache.stats()
        assert stats["entries"] == 1 and stats["hits"] == 1
        assert stats["misses"] == 1 and stats["hit_rate"] == 0.5


class TestTierRegistry:
    def test_both_tiers_registered(self):
        tiers = registered_tiers()
        assert tiers["probe"] == ("probe_cache", "probe_*.json")
        assert tiers["baseline"] == ("baseline_cache", "baseline_*.json")

    def test_clear_disk_tiers_clears_every_tier(self, tmp_path):
        probe = ProbeCache(disk_dir=tmp_path / "probe_cache")
        probe.ensure("d")
        probe.put((1, 2), 42)
        baseline_dir = tmp_path / "baseline_cache"
        baseline_dir.mkdir()
        (baseline_dir / "baseline_deadbeef.json").write_text("{}")
        assert disk_tier_entries(tmp_path) == {"baseline": 1, "probe": 1}
        removed = clear_disk_tiers(tmp_path)
        assert removed == {"baseline": 1, "probe": 1}
        assert disk_tier_entries(tmp_path) == {"baseline": 0, "probe": 0}

    def test_clear_missing_root_is_a_noop(self, tmp_path):
        assert clear_disk_tiers(tmp_path / "nope") \
            == {"baseline": 0, "probe": 0}

    def test_foreign_files_survive_force(self, tmp_path):
        (tmp_path / "probe_cache").mkdir()
        keeper = tmp_path / "probe_cache" / "README.txt"
        keeper.write_text("not a cache entry")
        clear_disk_tiers(tmp_path)
        assert keeper.exists()


class TestUnifiedCounters:
    def test_counters_accumulate_across_instances(self):
        reset_cache_counters()
        for _ in range(2):
            cache = ProbeCache()
            cache.ensure("d")
            cache.get(("k",))
            cache.put(("k",), 1)
            cache.get(("k",))
        counts = cache_counters()["probe"]
        assert counts["hits"] == 2 and counts["misses"] == 2

    def test_summary_lists_registered_tiers(self, tmp_path):
        reset_cache_counters()
        text = summarize_caches(tmp_path)
        assert "cache baseline:" in text and "cache probe:" in text
        assert "persisted=0" in text

    def test_summary_without_root_skips_persisted(self):
        reset_cache_counters()
        cache = ProbeCache()
        cache.ensure("d")
        cache.get(("k",))
        text = summarize_caches()
        assert "misses=1" in text and "persisted" not in text


class TestProbeDiskTier:
    def test_roundtrip_across_instances(self, tmp_path):
        digest = model_digest("S6", 2025)
        cache = ProbeCache(disk_dir=tmp_path)
        cache.ensure(digest)
        cache.put((1, 5, "ROW_STRIPE", 1000, 14.85, 1, 80.0), 7)
        fresh = ProbeCache(disk_dir=tmp_path)
        fresh.ensure(digest)
        assert fresh.get((1, 5, "ROW_STRIPE", 1000, 14.85, 1, 80.0)) == 7
        assert fresh.hits == 1 and fresh.misses == 0

    def test_model_drift_ignores_persisted_probes(self, tmp_path):
        cache = ProbeCache(disk_dir=tmp_path)
        cache.ensure(model_digest("S6", 2025))
        cache.put((1, 5), 7)
        fresh = ProbeCache(disk_dir=tmp_path)
        fresh.ensure(model_digest("S6", 2026))  # recalibrated model
        assert fresh.get((1, 5)) is None

    def test_non_integer_payload_rejected_on_disk_read(self, tmp_path):
        cache = ProbeCache(disk_dir=tmp_path)
        cache.ensure("d")
        cache.put((1,), 7)
        path = next(tmp_path.glob("probe_*.json"))
        blob = json.loads(path.read_text())
        assert blob["digest"] == "d" and blob["result"] == 7


_DIGESTS = st.sampled_from(
    [model_digest("S6", 2025), model_digest("H5", 2025),
     model_digest("S6", 2026), baseline_code_digest()])
_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("ensure"), _DIGESTS),
        st.tuples(st.just("put"), st.integers(0, 5)),
        st.tuples(st.just("get"), st.integers(0, 5))),
    min_size=1, max_size=40)


class TestDriftParityProperty:
    """Satellite: the shared implementation must invalidate on digest
    drift exactly like both pre-unification caches did, for any operation
    interleaving."""

    @settings(max_examples=60, deadline=None)
    @given(ops=_OPS)
    def test_probe_and_baseline_invalidate_identically(self, ops):
        probe = ProbeCache(maxsize=8)
        plain = _PlainCache(maxsize=8)
        for op, arg in ops:
            if op == "ensure":
                probe.ensure(arg)
                plain.ensure(arg)
            elif op == "put":
                probe.put((arg,), arg)
                plain.put((arg,), arg)
            else:
                a = probe.get((arg,))
                b = plain.get((arg,))
                assert a == b
            assert len(probe) == len(plain)
            assert probe.digest == plain.digest
        assert probe.invalidations == plain.invalidations
        assert probe.hits == plain.hits and probe.misses == plain.misses

    @settings(max_examples=40, deadline=None)
    @given(digests=st.lists(_DIGESTS, min_size=1, max_size=20))
    def test_invalidations_count_digest_changes(self, digests):
        cache = BaselineCache(maxsize=4)
        changes = 0
        previous = None
        for digest in digests:
            cache.ensure(digest)
            if previous is not None and digest != previous:
                changes += 1
            previous = digest
        assert cache.invalidations == changes


class TestKeyCanonicalization:
    """Regression: ``key_text`` must canonicalize (sorted keys, stable
    separators) so logically equal keys share one entry and one disk file;
    entries persisted under the old serialization must migrate."""

    def test_dict_key_order_is_identity(self):
        cache = _PlainCache(maxsize=4)
        cache.ensure("d")
        cache.put({"b": 2, "a": 1}, "value")
        assert cache.get({"a": 1, "b": 2}) == "value"
        assert len(cache) == 1
        assert cache.hits == 1 and cache.misses == 0

    def test_reordered_keys_share_one_disk_file(self, tmp_path):
        cache = _DiskCache(maxsize=4, disk_dir=tmp_path)
        cache.ensure("d")
        cache.put({"b": 2, "a": 1}, 7)
        cache.put({"a": 1, "b": 2}, 7)
        assert len(list(tmp_path.glob("entry_*.json"))) == 1
        fresh = _DiskCache(maxsize=4, disk_dir=tmp_path)
        fresh.ensure("d")
        assert fresh.get({"a": 1, "b": 2}) == 7

    def test_key_text_is_canonical_json(self):
        cache = _DiskCache(maxsize=4)
        assert cache.key_text({"b": 2, "a": 1}) \
            == cache.key_text({"a": 1, "b": 2}) == '{"a":1,"b":2}'
        assert cache.key_text("already-a-string") == "already-a-string"

    def test_legacy_disk_entries_migrate(self, tmp_path):
        import hashlib

        cache = _DiskCache(maxsize=4, disk_dir=tmp_path)
        cache.ensure("d")
        key = {"b": 2, "a": 1}
        legacy_text = json.dumps(key, default=str)  # pre-fix serialization
        suffix = hashlib.sha256(legacy_text.encode()).hexdigest()[:24]
        legacy_path = tmp_path / f"entry_{suffix}.json"
        legacy_path.write_text(json.dumps(
            {"digest": "d", "key": legacy_text, "result": 7}, sort_keys=True))
        assert cache.get(key) == 7
        assert not legacy_path.exists()  # rewritten at the canonical path
        fresh = _DiskCache(maxsize=4, disk_dir=tmp_path)
        fresh.ensure("d")
        assert fresh.get({"a": 1, "b": 2}) == 7

    def test_legacy_entry_with_stale_digest_is_ignored(self, tmp_path):
        import hashlib

        cache = _DiskCache(maxsize=4, disk_dir=tmp_path)
        cache.ensure("new-model")
        key = {"b": 2, "a": 1}
        legacy_text = json.dumps(key, default=str)
        suffix = hashlib.sha256(legacy_text.encode()).hexdigest()[:24]
        (tmp_path / f"entry_{suffix}.json").write_text(json.dumps(
            {"digest": "old-model", "key": legacy_text, "result": 7}))
        assert cache.get(key) is None


class TestForceClearsMemoryTier:
    """Regression: ``clear_disk()``/``clear_disk_tiers()`` must also drop
    the in-memory tier and unbind the digest, or a live instance keeps
    serving stale payloads after ``--force``."""

    def test_clear_disk_resets_memory_and_digest(self, tmp_path):
        cache = _DiskCache(maxsize=4, disk_dir=tmp_path)
        cache.ensure("d")
        cache.put({"k": 1}, "stale")
        assert cache.clear_disk() == 1
        assert len(cache) == 0 and cache.digest is None
        cache.ensure("d")
        assert cache.get({"k": 1}) is None

    def test_memory_only_clear_disk_still_drops_entries(self):
        cache = _PlainCache(maxsize=4)
        cache.ensure("d")
        cache.put({"k": 1}, "stale")
        assert cache.clear_disk() == 0
        cache.ensure("d")
        assert cache.get({"k": 1}) is None

    def test_clear_disk_tiers_clears_live_instances(self, tmp_path):
        live = ProbeCache(disk_dir=tmp_path / "probe_cache")
        live.ensure("model")
        live.put((1, 2), 42)
        clear_disk_tiers(tmp_path)
        assert len(live) == 0 and live.digest is None
        live.ensure("model")
        assert live.get((1, 2)) is None  # recomputes, not stale memory

    def test_clear_disk_tiers_scopes_to_root(self, tmp_path):
        other = ProbeCache(disk_dir=tmp_path / "elsewhere" / "probe_cache")
        other.ensure("model")
        other.put((1,), 9)
        clear_disk_tiers(tmp_path / "results")
        assert other.get((1,)) == 9  # different root: untouched

    def test_rebind_after_force_is_not_an_invalidation(self, tmp_path):
        cache = _DiskCache(maxsize=4, disk_dir=tmp_path)
        cache.ensure("d")
        cache.clear_disk()
        cache.ensure("d")
        assert cache.invalidations == 0


class TestDiskHitCounter:
    """Regression: disk-tier promotions must be distinguishable from warm
    memory hits (``disk_hits``), without changing the ``hits`` total."""

    def test_promotion_counts_once_in_each(self, tmp_path):
        cache = _DiskCache(maxsize=4, disk_dir=tmp_path)
        cache.ensure("d")
        cache.put({"k": 1}, 7)
        fresh = _DiskCache(maxsize=4, disk_dir=tmp_path)
        fresh.ensure("d")
        assert fresh.get({"k": 1}) == 7  # disk promotion
        assert fresh.get({"k": 1}) == 7  # now warm in memory
        assert fresh.hits == 2 and fresh.disk_hits == 1
        assert fresh.misses == 0

    def test_memory_hits_leave_disk_hits_zero(self):
        cache = _PlainCache(maxsize=4)
        cache.ensure("d")
        cache.put("k", 1)
        cache.get("k")
        assert cache.hits == 1 and cache.disk_hits == 0
        assert cache.stats()["disk_hits"] == 0

    def test_unified_counters_and_summary_surface_disk_hits(self, tmp_path):
        reset_cache_counters()
        cache = ProbeCache(disk_dir=tmp_path / "probe_cache")
        cache.ensure("d")
        cache.put((1,), 2)
        fresh = ProbeCache(disk_dir=tmp_path / "probe_cache")
        fresh.ensure("d")
        fresh.get((1,))
        counts = cache_counters()["probe"]
        assert counts["hits"] == 1 and counts["disk_hits"] == 1
        text = summarize_caches(tmp_path)
        assert "disk_hits=1" in text


class TestForceClearsProbeTier:
    """Satellite: ``sweep --force`` must clear *every* persisted tier under
    the results dir — including a stale probe tier — not just baselines."""

    def test_runner_force_routes_through_registry(self, tmp_path):
        from repro.analysis.sweeprunner import SweepGrid, SweepRunner

        results = tmp_path / "sweep"
        probe_dir = results / "probe_cache"
        stale = ProbeCache(disk_dir=probe_dir)
        stale.ensure("stale-model")
        stale.put((1, 2, 3), 9)
        grid = SweepGrid(mitigations=("Graphene",), nrh_values=(128,),
                         pacram_vendors=(None,),
                         workload_sets=(("spec06.mcf",),), requests=300)
        runner = SweepRunner(results, grid)
        runner.run(jobs=1)
        assert list(runner.cache_dir().glob("baseline_*.json"))
        assert list(probe_dir.glob("probe_*.json"))
        runner.execution.clear_caches()
        assert not list(runner.cache_dir().glob("baseline_*.json"))
        assert not list(probe_dir.glob("probe_*.json"))

    def test_cli_force_clears_all_tiers(self, tmp_path):
        from repro.cli import main

        results = tmp_path / "sweep"
        probe_dir = results / "probe_cache"
        stale = ProbeCache(disk_dir=probe_dir)
        stale.ensure("stale-model")
        stale.put((1,), 2)
        argv = ["sweep", "--dir", str(results), "--jobs", "1",
                "--mitigations", "Graphene", "--nrh", "128",
                "--requests", "300"]
        assert main(argv) == 0
        assert list(probe_dir.glob("probe_*.json"))  # untouched resume
        assert main(argv + ["--force"]) == 0
        assert not list(probe_dir.glob("probe_*.json"))
