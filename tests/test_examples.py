"""Integration tests: every example script runs end to end.

Examples are the library's front door; these tests keep them from rotting.
Each runs in-process with downsized parameters where the script accepts
them.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=420)
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_examples_directory_contents():
    scripts = sorted(p.name for p in EXAMPLES.glob("*.py"))
    assert "quickstart.py" in scripts
    assert len(scripts) >= 5  # quickstart + at least four scenarios


def test_quickstart():
    out = run_example("quickstart.py")
    assert "lowest N_RH at nominal tRAS" in out
    assert "374" in out  # the published t_FCRI comparison
    assert "IPC" in out


def test_characterize_module():
    out = run_example("characterize_module.py", "S7", "--rows", "6")
    assert "K4A8G085WD-BCTD" in out
    assert "Normalized BER" in out


def test_characterize_module_saves_json(tmp_path):
    path = tmp_path / "s7.json"
    run_example("characterize_module.py", "S7", "--rows", "4",
                "--save", str(path))
    assert path.exists()


def test_pacram_speedup():
    out = run_example("pacram_speedup.py", "--requests", "400",
                      "--nrh", "128")
    assert "PaCRAM-H" in out
    assert "Graphene" in out


def test_rowhammer_attack_demo():
    out = run_example("rowhammer_attack_demo.py")
    assert "Double-sided RowHammer" in out
    assert "Half-Double" in out
    assert "refresh healed" in out


def test_deployment_flow():
    out = run_example("deployment_flow.py")
    assert "SPD" in out
    assert "mode-register writes" in out
    assert "SEC-DED" in out


@pytest.mark.parametrize("flags", [("--densities", "8,64",
                                    "--requests", "400")])
def test_periodic_refresh_study(flags):
    out = run_example("periodic_refresh_study.py", *flags)
    assert "no-refresh system" in out
    assert "512 Gb" in out or "64 Gb" in out
