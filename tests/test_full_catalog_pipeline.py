"""Breadth test: every one of the 30 catalog modules runs through the
characterization pipeline and reproduces its Table-3 retention signature.

This is the widest single closure check in the suite: all 30 simulated
modules (388 chips' worth of calibration) are exercised end to end at a
tiny row sample, and the zero / non-zero structure of Table 3's deepest
latency columns must come back out of Algorithm 1.
"""

import pytest

from repro.characterization.sweeps import characterize_module
from repro.dram.catalog import all_module_ids, module_spec


@pytest.mark.parametrize("module_id", all_module_ids())
def test_module_retention_signature(module_id):
    spec = module_spec(module_id)
    # 3 x 16 rows: enough that the weak-retention tail (~15 % of rows at
    # the failure boundary) is sampled with near certainty.
    result = characterize_module(module_id, tras_factors=(0.27, 0.18),
                                 per_region=16)
    for factor in (1.00, 0.27, 0.18):
        published = spec.lowest_nrh[factor]
        measured = result.lowest_nrh(factor)
        if published is None:
            assert measured is None, (module_id, factor)
        elif published == 0:
            assert measured == 0, (module_id, factor)
        else:
            assert measured is not None and measured > 0, (module_id, factor)
