"""Tests for bank timelines and the energy model."""

import pytest

from repro.errors import SimulationError
from repro.sim.bankmodel import (
    OCCUPY_EPSILON_NS,
    BankTimeline,
    ChannelTimeline,
    RankTimeline,
)
from repro.sim.energy import EnergyModel


class TestBankTimeline:
    def test_occupy_advances_ready(self):
        bank = BankTimeline()
        end = bank.occupy(10.0, 48.0)
        assert end == 58.0
        assert bank.ready_ns == 58.0

    def test_occupy_while_busy_rejected(self):
        bank = BankTimeline()
        bank.occupy(0.0, 100.0)
        with pytest.raises(SimulationError):
            bank.occupy(50.0, 10.0)

    def test_preventive_busy_accounted(self):
        bank = BankTimeline()
        bank.occupy(0.0, 190.0, preventive=True)
        assert bank.preventive_busy_ns == 190.0
        assert bank.refresh_busy_ns == 0.0

    def test_refresh_busy_accounted(self):
        bank = BankTimeline()
        bank.occupy(0.0, 350.0, refresh=True)
        assert bank.refresh_busy_ns == 350.0

    def test_block_until_monotone(self):
        bank = BankTimeline()
        bank.block_until(100.0)
        bank.block_until(50.0)
        assert bank.ready_ns == 100.0

    def test_negative_duration_rejected(self):
        with pytest.raises(SimulationError):
            BankTimeline().occupy(0.0, -1.0)

    def test_occupy_boundary_tolerates_float_roundoff(self):
        # Analytic timing accumulates float error; a start a hair before
        # ready_ns must clamp to ready_ns, not abort the simulation.
        bank = BankTimeline()
        bank.occupy(0.0, 100.0)
        end = bank.occupy(100.0 - OCCUPY_EPSILON_NS / 2, 10.0)
        assert end == 110.0
        assert bank.ready_ns == 110.0

    def test_occupy_beyond_epsilon_still_rejected(self):
        bank = BankTimeline()
        bank.occupy(0.0, 100.0)
        with pytest.raises(SimulationError):
            bank.occupy(100.0 - 10 * OCCUPY_EPSILON_NS, 10.0)


class TestRankTimeline:
    def test_faw_allows_four_acts(self):
        rank = RankTimeline()
        for t in (0.0, 5.0, 10.0, 15.0):
            assert rank.faw_constraint(t, 20.0) <= t
            rank.record_act(t)

    def test_fifth_act_delayed(self):
        rank = RankTimeline()
        for t in (0.0, 2.0, 4.0, 6.0):
            rank.record_act(t)
        # The fifth ACT within the window must wait until t0 + tFAW.
        assert rank.faw_constraint(8.0, 20.0) == pytest.approx(20.0)

    def test_old_acts_expire(self):
        rank = RankTimeline()
        for t in (0.0, 2.0, 4.0, 6.0):
            rank.record_act(t)
        assert rank.faw_constraint(100.0, 20.0) == 100.0


class TestChannelTimeline:
    def test_bus_serializes(self):
        channel = ChannelTimeline()
        first = channel.reserve_bus(10.0, 3.0)
        second = channel.reserve_bus(10.0, 3.0)
        assert first == 13.0
        assert second == 16.0

    def test_idle_bus_starts_immediately(self):
        channel = ChannelTimeline()
        assert channel.reserve_bus(100.0, 3.0) == 103.0


class TestEnergyModel:
    def test_act_energy_scales_with_tras(self):
        energy = EnergyModel()
        assert energy.act_energy(32.0) > energy.act_energy(12.0)

    def test_partial_restoration_saves_energy(self):
        full = EnergyModel()
        full.add_preventive_refresh(4, 32.0)
        partial = EnergyModel()
        partial.add_preventive_refresh(4, 32.0 * 0.36)
        assert partial.preventive_refresh_nj < full.preventive_refresh_nj

    def test_total_sums_components(self):
        energy = EnergyModel()
        energy.add_activation(32.0)
        energy.add_read()
        energy.add_write()
        energy.add_periodic_refresh(8, 32.0)
        energy.add_metadata_access(2, 1)
        energy.finalize_background(1000.0)
        expected = (energy.activation_nj + energy.read_nj + energy.write_nj
                    + energy.periodic_refresh_nj
                    + energy.preventive_refresh_nj + energy.metadata_nj
                    + energy.background_nj)
        assert energy.total_nj == pytest.approx(expected)

    def test_background_scales_with_time(self):
        energy = EnergyModel(ranks=2)
        energy.finalize_background(1e6)
        once = energy.background_nj
        energy.finalize_background(2e6)
        assert energy.background_nj == pytest.approx(2 * once)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(SimulationError):
            EnergyModel().act_energy(0.0)
        with pytest.raises(SimulationError):
            EnergyModel().finalize_background(-1.0)
