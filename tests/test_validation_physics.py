"""Tests for physics invariant guards and model-drift digests."""

import dataclasses

import pytest

from repro.dram import vendor
from repro.dram.catalog import all_module_ids, module_spec
from repro.dram.charge import ChargeModel
from repro.errors import ProtocolViolation
from repro.validation import (
    MODEL_VERSION,
    check_physics,
    model_digest,
    physics_problems,
)


class TestInvariants:
    def test_every_catalog_module_is_clean(self):
        for module_id in all_module_ids():
            assert physics_problems(module_id) == [], module_id

    def test_strict_mode_silent_on_clean_module(self):
        assert check_physics("H5", mode="strict") == []

    def test_poisoned_margin_anchor_flagged(self):
        model = ChargeModel(module_spec("H5"))
        # Copy before poisoning: the anchors are shared calibration tables.
        model._margin_anchors = {**model._margin_anchors, 0.45: 1.3}
        problems = model.check_invariants()
        assert problems
        assert any("margin" in problem for problem in problems)

    def test_strict_mode_raises_on_problems(self, monkeypatch):
        monkeypatch.setattr(ChargeModel, "check_invariants",
                            lambda self: ["synthetic problem"])
        with pytest.raises(ProtocolViolation) as excinfo:
            check_physics("H5", mode="strict")
        assert excinfo.value.rule == "physics.invariant"
        assert check_physics("H5", mode="tolerant") == ["synthetic problem"]


class TestModelDigest:
    def test_digest_is_stable(self):
        assert model_digest("H5") == model_digest("H5")
        assert len(model_digest("H5")) == 64

    def test_digest_separates_modules_and_seeds(self):
        assert model_digest("H5") != model_digest("M2")
        assert model_digest("H5", seed=1) != model_digest("H5", seed=2)
        assert model_digest("H5", seed=None) != model_digest("H5", seed=1)

    def test_digest_tracks_vendor_calibration(self):
        before = model_digest("H5")
        manufacturer = vendor.Manufacturer.H
        original = vendor._PROFILES[manufacturer]
        vendor._PROFILES[manufacturer] = dataclasses.replace(
            original, ber_growth_exponent=original.ber_growth_exponent + 0.1)
        try:
            assert model_digest("H5") != before
        finally:
            vendor._PROFILES[manufacturer] = original
        assert model_digest("H5") == before

    def test_model_version_is_folded_in(self):
        assert MODEL_VERSION >= 1
