"""Tests for evaluation config files and attack traces."""

import pytest

from repro.errors import ConfigError
from repro.mitigations import make_mitigation
from repro.sim.addrmap import AddressMapper
from repro.sim.config import SystemConfig
from repro.sim.configloader import EvaluationConfig
from repro.sim.system import MemorySystem
from repro.workloads.attack import (
    double_sided_trace,
    many_sided_trace,
    row_activation_counts,
)


class TestEvaluationConfig:
    def test_defaults_valid(self):
        config = EvaluationConfig()
        assert "PARA" in config.mitigations
        assert config.sweep_grid().points()

    def test_json_round_trip(self, tmp_path):
        config = EvaluationConfig(
            mitigations=("PARA", "Graphene"), nrh_values=(128,),
            pacram_vendors=(None, "H"), workloads=("spec06.mcf",),
            requests=500, latency_factor_rfc=0.36)
        path = tmp_path / "eval.json"
        config.save(path)
        loaded = EvaluationConfig.load(path)
        assert loaded == config

    def test_artifact_knob_names(self, tmp_path):
        # The A.6 knobs: MITIGATION_LIST / NRH_VALUES / latency factors.
        path = tmp_path / "eval.json"
        path.write_text('''{
            "mitigations": ["RFM"],
            "nrh_values": [64, 32],
            "latency_factor_vrr": 0.36,
            "latency_factor_rfc": 0.64
        }''')
        config = EvaluationConfig.load(path)
        assert config.mitigations == ("RFM",)
        assert config.latency_factor_vrr == 0.36
        assert config.latency_factor_rfc == 0.64

    def test_unknown_key_rejected(self, tmp_path):
        path = tmp_path / "eval.json"
        path.write_text('{"mitigaitons": ["RFM"]}')  # typo'd key
        with pytest.raises(ConfigError, match="unknown config keys"):
            EvaluationConfig.load(path)

    def test_unknown_mitigation_rejected(self):
        with pytest.raises(ConfigError):
            EvaluationConfig(mitigations=("TRR",))

    def test_malformed_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigError, match="malformed"):
            EvaluationConfig.load(path)

    def test_none_vendor_spelled_out(self, tmp_path):
        path = tmp_path / "eval.json"
        path.write_text('{"pacram_vendors": ["none", "S"]}')
        config = EvaluationConfig.load(path)
        assert config.pacram_vendors == (None, "S")

    def test_grid_matches_knobs(self):
        config = EvaluationConfig(mitigations=("PARA",), nrh_values=(64,),
                                  pacram_vendors=(None,),
                                  workloads=("a", "b"))
        assert len(config.sweep_grid().points()) == 2


class TestAttackTraces:
    def test_double_sided_targets_neighbors(self):
        config = SystemConfig(num_cores=1)
        trace = double_sided_trace(config, victim_row=1000, hammers=50)
        mapper = AddressMapper(config)
        rows = {mapper.decode(int(a)).row for a in trace.addresses}
        assert rows == {999, 1001}

    def test_double_sided_every_access_misses(self):
        config = SystemConfig(num_cores=1)
        trace = double_sided_trace(config, hammers=500)
        counts = row_activation_counts(config, trace)
        assert sum(counts.values()) == len(trace)

    def test_double_sided_triggers_mitigation_in_system(self):
        config = SystemConfig(num_cores=1)
        trace = double_sided_trace(config, hammers=600)
        mitigation = make_mitigation("Graphene", 512)
        result = MemorySystem(config, [trace], mitigation=mitigation).run()
        assert result.controller_stats.preventive_refresh_rows > 0

    def test_many_sided_spreads_rows(self):
        config = SystemConfig(num_cores=1)
        trace = many_sided_trace(config, aggressor_rows=8,
                                 hammers_per_row=20)
        mapper = AddressMapper(config)
        rows = {mapper.decode(int(a)).row for a in trace.addresses}
        assert len(rows) == 8

    def test_many_sided_evades_high_thresholds(self):
        # Spreading 8 x 250 activations keeps each row below a 512-count
        # tracker threshold: zero preventive refreshes despite 2000 ACTs.
        config = SystemConfig(num_cores=1)
        trace = many_sided_trace(config, aggressor_rows=8,
                                 hammers_per_row=250)
        mitigation = make_mitigation("Graphene", 4096)  # threshold 1024
        result = MemorySystem(config, [trace], mitigation=mitigation).run()
        assert result.controller_stats.preventive_refresh_rows == 0

    def test_validation(self):
        config = SystemConfig(num_cores=1)
        with pytest.raises(ConfigError):
            double_sided_trace(config, hammers=0)
        with pytest.raises(ConfigError):
            double_sided_trace(config, victim_row=0)
        with pytest.raises(ConfigError):
            many_sided_trace(config, aggressor_rows=1)


class TestConfigRejection:
    def test_unknown_key_names_nearest_match(self, tmp_path):
        path = tmp_path / "eval.json"
        path.write_text('{"nrh_valeus": [128]}')
        with pytest.raises(ConfigError, match="did you mean 'nrh_values'"):
            EvaluationConfig.load(path)

    def test_unknown_key_without_close_match(self):
        with pytest.raises(ConfigError, match="unknown config keys"):
            EvaluationConfig.from_dict({"frobnicate": 1})

    def test_duplicate_json_key_rejected(self, tmp_path):
        path = tmp_path / "eval.json"
        path.write_text('{"requests": 100, "requests": 200}')
        with pytest.raises(ConfigError, match="duplicate config key"):
            EvaluationConfig.load(path)

    def test_duplicate_workloads_rejected(self):
        with pytest.raises(ConfigError, match="duplicate workloads"):
            EvaluationConfig(workloads=("spec06.mcf", "spec06.mcf"))

    def test_duplicate_mitigations_rejected(self):
        with pytest.raises(ConfigError, match="duplicate mitigations"):
            EvaluationConfig(mitigations=("PARA", "PARA"))

    def test_check_protocol_round_trips_into_grid(self, tmp_path):
        config = EvaluationConfig(workloads=("spec06.mcf",),
                                  check_protocol="strict")
        path = tmp_path / "eval.json"
        config.save(path)
        loaded = EvaluationConfig.load(path)
        assert loaded.check_protocol == "strict"
        assert loaded.sweep_grid().check_protocol == "strict"

    def test_invalid_check_protocol_rejected(self):
        with pytest.raises(ConfigError, match="check_protocol"):
            EvaluationConfig(check_protocol="paranoid")
