"""BaselineCache: memoized no-PaCRAM baselines with digest invalidation."""

from dataclasses import asdict

import pytest

from repro.analysis.baselines import (
    BaselineCache,
    baseline_code_digest,
    baseline_key,
    cacheable,
    result_from_json,
    result_to_json,
    trace_digest,
)
from repro.analysis.runner import run_simulation
from repro.errors import SimulationError
from repro.sim.config import SystemConfig
from repro.workloads.suites import workload_by_name


def _result(**kwargs):
    kwargs.setdefault("requests", 300)
    return run_simulation(("spec06.mcf",), **kwargs)


class TestResultRoundTrip:
    def test_exact(self):
        result = _result(mitigation="PARA", nrh=128)
        clone = result_from_json(result_to_json(result))
        assert asdict(clone) == asdict(result)

    def test_json_serializable(self):
        import json

        payload = result_to_json(_result())
        assert result_from_json(json.loads(json.dumps(payload))) is not None

    def test_refuses_checked_result(self):
        result = _result()
        result.protocol_violations = ["fake"]
        with pytest.raises(SimulationError):
            result_to_json(result)


class TestKeysAndDigests:
    def test_trace_digest_content_sensitive(self):
        a = workload_by_name("spec06.mcf", requests=200, seed=1)
        b = workload_by_name("spec06.mcf", requests=200, seed=1)
        c = workload_by_name("spec06.mcf", requests=200, seed=2)
        assert trace_digest(a) == trace_digest(b)
        assert trace_digest(a) != trace_digest(c)

    def test_key_covers_inputs(self):
        config = SystemConfig(num_cores=1)
        traces = [workload_by_name("spec06.mcf", requests=200, seed=7)]
        base = dict(mitigation="PARA", nrh=128, requests=200, seed=7,
                    config=config)
        key = baseline_key(("spec06.mcf",), traces, **base)
        assert key == baseline_key(("spec06.mcf",), traces, **base)
        assert key != baseline_key(("spec06.mcf",), traces,
                                   **{**base, "nrh": 64})
        assert key != baseline_key(("spec06.mcf",), traces,
                                   **{**base, "mitigation": "RFM"})
        other_config = SystemConfig(num_cores=1, channels=2)
        assert key != baseline_key(("spec06.mcf",), traces,
                                   **{**base, "config": other_config})

    def test_code_digest_stable(self):
        assert baseline_code_digest() == baseline_code_digest()

    def test_cacheable_gates(self):
        assert cacheable(pacram=None, checker=None, violations_path=None)
        assert not cacheable(pacram=object(), checker=None,
                             violations_path=None)
        assert not cacheable(pacram=None, checker="strict",
                             violations_path=None)
        assert not cacheable(pacram=None, checker=None,
                             violations_path="x.jsonl")


class TestBaselineCache:
    def test_memoizes(self):
        cache = BaselineCache()
        first = _result(mitigation="PARA", nrh=128, cache=cache)
        second = _result(mitigation="PARA", nrh=128, cache=cache)
        assert asdict(first) == asdict(second)
        assert cache.hits == 1 and cache.misses == 1

    def test_get_returns_fresh_copies(self):
        cache = BaselineCache()
        first = _result(cache=cache)
        second = _result(cache=cache)
        assert first is not second
        second.energy_breakdown["activation"] = -1.0
        third = _result(cache=cache)
        assert third.energy_breakdown["activation"] \
            == first.energy_breakdown["activation"]

    def test_digest_drift_invalidates(self):
        cache = BaselineCache()
        cache.ensure("digest-a")
        cache.put("key", _result())
        assert len(cache) == 1
        cache.ensure("digest-b")
        assert len(cache) == 0
        assert cache.invalidations == 1
        assert cache.get("key") is None

    def test_lru_bound(self):
        cache = BaselineCache(maxsize=2)
        result = _result()
        for key in ("a", "b", "c"):
            cache.put(key, result)
        assert len(cache) == 2
        assert cache.get("a") is None  # evicted
        assert cache.get("c") is not None

    def test_rejects_bad_maxsize(self):
        with pytest.raises(ValueError):
            BaselineCache(maxsize=0)

    def test_pacram_and_checked_runs_bypass(self):
        from repro.analysis.runner import pacram_reference_config

        cache = BaselineCache()
        _result(mitigation="PARA", nrh=128,
                pacram=pacram_reference_config("H"), cache=cache)
        _result(mitigation="PARA", nrh=128, check_protocol="tolerant",
                cache=cache)
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0


class TestDiskTier:
    def test_shared_across_instances(self, tmp_path):
        cache = BaselineCache(disk_dir=tmp_path)
        first = _result(cache=cache)
        fresh = BaselineCache(disk_dir=tmp_path)
        second = _result(cache=fresh)
        assert asdict(first) == asdict(second)
        assert fresh.hits == 1 and fresh.misses == 0

    def test_stale_digest_ignored(self, tmp_path):
        cache = BaselineCache(disk_dir=tmp_path)
        cache.ensure("old-digest")
        cache.put("key", _result())
        fresh = BaselineCache(disk_dir=tmp_path)
        fresh.ensure("new-digest")
        assert fresh.get("key") is None

    def test_torn_file_is_a_miss(self, tmp_path):
        cache = BaselineCache(disk_dir=tmp_path)
        cache.ensure("d")
        cache.put("key", _result())
        for path in tmp_path.glob("baseline_*.json"):
            path.write_text("{ not json")
        fresh = BaselineCache(disk_dir=tmp_path)
        fresh.ensure("d")
        assert fresh.get("key") is None

    def test_clear_disk(self, tmp_path):
        cache = BaselineCache(disk_dir=tmp_path)
        cache.ensure("d")
        cache.put("a", _result())
        cache.put("b", _result(mitigation="PARA", nrh=128))
        assert cache.clear_disk() == 2
        assert cache.clear_disk() == 0


class TestSweepIntegration:
    def test_force_clears_cache(self, tmp_path):
        from repro.analysis.sweeprunner import SweepGrid, SweepRunner

        grid = SweepGrid(mitigations=("PARA",), nrh_values=(1024,),
                         pacram_vendors=(None,),
                         workload_sets=(("spec06.mcf",),), requests=300)
        runner = SweepRunner(tmp_path / "sweep", grid)
        runner.run(jobs=1)
        assert list(runner.cache_dir().glob("baseline_*.json"))
        runner.execution.clear_caches()
        assert not list(runner.cache_dir().glob("baseline_*.json"))
