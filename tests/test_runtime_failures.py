"""Unit tests for the failure taxonomy (repro.runtime.failures)."""

from __future__ import annotations

import errno
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.errors import ConfigError, ProgramError
from repro.runtime.failures import (
    FAILURE_CLASSES,
    INFRASTRUCTURE,
    PERMANENT,
    TIMEOUT,
    TRANSIENT,
    TaskTimeout,
    classify_failure,
    register_failure,
    reset_failure_rules,
)


class TestBuiltinClassification:
    def test_timeout(self):
        assert classify_failure(TaskTimeout("deadline")) == TIMEOUT

    def test_broken_pool_is_infrastructure(self):
        assert classify_failure(BrokenProcessPool("died")) == INFRASTRUCTURE

    def test_memory_pressure_is_infrastructure(self):
        assert classify_failure(MemoryError()) == INFRASTRUCTURE
        assert classify_failure(BlockingIOError()) == INFRASTRUCTURE

    @pytest.mark.parametrize("code", [errno.ENOSPC, errno.EROFS, errno.EIO,
                                      errno.EMFILE, errno.ENOMEM])
    def test_resource_oserrors_are_infrastructure(self, code):
        assert classify_failure(OSError(code, "resource")) == INFRASTRUCTURE

    def test_plain_oserror_is_transient(self):
        # No errno, or an errno outside the resource set: worth retrying.
        assert classify_failure(OSError("vague")) == TRANSIENT
        assert classify_failure(OSError(errno.ENOENT, "gone")) == TRANSIENT

    @pytest.mark.parametrize("exc", [ConfigError("bad"), ProgramError("bad")])
    def test_domain_errors_are_permanent(self, exc):
        assert classify_failure(exc) == PERMANENT

    def test_unknown_exception_defaults_to_transient(self):
        assert classify_failure(RuntimeError("??")) == TRANSIENT
        assert classify_failure(ValueError("??")) == TRANSIENT


class TestRegisteredRules:
    def test_rule_applies_and_resets(self):
        register_failure(PERMANENT, ValueError)
        assert classify_failure(ValueError("x")) == PERMANENT
        reset_failure_rules()
        assert classify_failure(ValueError("x")) == TRANSIENT

    def test_later_rule_wins(self):
        register_failure(PERMANENT, ValueError)
        register_failure(INFRASTRUCTURE, ValueError)
        assert classify_failure(ValueError("x")) == INFRASTRUCTURE

    def test_when_predicate_narrows_the_match(self):
        register_failure(PERMANENT, RuntimeError,
                         when=lambda e: "fatal" in str(e))
        assert classify_failure(RuntimeError("fatal disk")) == PERMANENT
        assert classify_failure(RuntimeError("blip")) == TRANSIENT

    def test_subclass_matches_registered_type(self):
        class Special(RuntimeError):
            pass

        register_failure(PERMANENT, RuntimeError)
        assert classify_failure(Special("x")) == PERMANENT

    def test_invalid_class_rejected(self):
        with pytest.raises(ConfigError, match="failure class must be one of"):
            register_failure("catastrophic", RuntimeError)

    def test_taxonomy_is_closed(self):
        assert FAILURE_CLASSES == (TRANSIENT, PERMANENT, TIMEOUT,
                                   INFRASTRUCTURE)
