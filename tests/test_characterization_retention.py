"""Tests for data-retention characterization (§7)."""

import pytest

from repro.characterization.retention import (
    RETENTION_TIMES_NS,
    retention_failure_fractions,
    sample_retention_failures,
)
from repro.errors import CharacterizationError
from repro.units import MS


class TestSampledRetention:
    def test_nominal_latency_retains(self):
        failed, tested = sample_retention_failures(
            "S6", tras_factor=1.0, n_pr=1, retention_time_ns=64 * MS,
            per_region=8)
        assert tested > 0
        assert failed == 0

    def test_deep_reduction_fails(self):
        failed, _ = sample_retention_failures(
            "S6", tras_factor=0.18, n_pr=1, retention_time_ns=64 * MS,
            per_region=24)
        assert failed > 0

    def test_m_never_fails(self):
        failed, _ = sample_retention_failures(
            "M2", tras_factor=0.18, n_pr=10, retention_time_ns=256 * MS,
            per_region=16)
        assert failed == 0

    def test_invalid_time_rejected(self):
        with pytest.raises(CharacterizationError):
            sample_retention_failures("S6", tras_factor=1.0, n_pr=1,
                                      retention_time_ns=0.0)


class TestAnalyticFractions:
    def test_covers_all_points(self):
        fractions = retention_failure_fractions(
            "S6", tras_factors=(1.0, 0.36), n_restorations=(1, 10))
        assert len(fractions) == 2 * 2 * len(RETENTION_TIMES_NS)

    def test_fig14_observation_four(self):
        # S rows retain 256 ms even x10 at 0.36 tRAS.
        fractions = retention_failure_fractions(
            "S6", tras_factors=(0.36,), n_restorations=(10,))
        assert fractions[(0.36, 10, 256 * MS)] == 0.0

    def test_fig14_observation_five(self):
        # ...but some rows fail 256 ms at 0.27 tRAS.
        fractions = retention_failure_fractions(
            "S6", tras_factors=(0.27,), n_restorations=(10,))
        assert fractions[(0.27, 10, 256 * MS)] > 0.0

    def test_fig14_observation_six(self):
        # Restoring x10 instead of x1 greatly amplifies S failures.
        fractions = retention_failure_fractions(
            "S6", tras_factors=(0.27,), n_restorations=(1, 10))
        once = fractions[(0.27, 1, 256 * MS)]
        ten = fractions[(0.27, 10, 256 * MS)]
        assert ten > once

    def test_fig14_observation_one_h_and_m_safe(self):
        # H and M rows retain 256 ms / 512 ms even x10 at 0.27 tRAS.
        h = retention_failure_fractions("H5", tras_factors=(0.27,),
                                        n_restorations=(10,))
        m = retention_failure_fractions("M2", tras_factors=(0.27,),
                                        n_restorations=(10,))
        assert h[(0.27, 10, 256 * MS)] == 0.0
        assert m[(0.27, 10, 512 * MS)] == 0.0

    def test_fractions_bounded(self):
        fractions = retention_failure_fractions(
            "S6", tras_factors=(1.0, 0.64, 0.36, 0.27),
            n_restorations=(1, 10))
        for value in fractions.values():
            assert 0.0 <= value <= 1.0
