"""Tests for disturbance kernels and data patterns."""

import pytest

from repro.dram.disturbance import (
    ALL_PATTERNS,
    BLAST_RADIUS,
    PATTERN_BASE_EFFECTIVENESS,
    DataPattern,
    HammerDose,
    ZERO_DOSE,
    distance_weight,
    double_sided_dose,
    half_double_dose,
)
from repro.errors import ConfigError


class TestDataPatterns:
    def test_six_hammering_patterns(self):
        # Algorithm 1 sweeps exactly six patterns (§4.3).
        assert len(ALL_PATTERNS) == 6

    def test_row_stripe_bytes(self):
        assert DataPattern.ROW_STRIPE.victim_byte == 0xFF
        assert DataPattern.ROW_STRIPE.aggressor_byte == 0x00

    def test_inverse_pairs(self):
        assert (DataPattern.ROW_STRIPE_INV.victim_byte
                == DataPattern.ROW_STRIPE.aggressor_byte)
        assert (DataPattern.CHECKERBOARD_INV.victim_byte
                == DataPattern.CHECKERBOARD.aggressor_byte)

    def test_short_names_unique(self):
        names = {p.short_name for p in DataPattern}
        assert len(names) == len(list(DataPattern))

    def test_effectiveness_covers_all_patterns(self):
        for pattern in DataPattern:
            assert pattern in PATTERN_BASE_EFFECTIVENESS

    def test_row_stripe_is_strongest(self):
        strongest = max(PATTERN_BASE_EFFECTIVENESS,
                        key=PATTERN_BASE_EFFECTIVENESS.__getitem__)
        assert strongest is DataPattern.ROW_STRIPE


class TestDistanceWeights:
    def test_blast_radius_two(self):
        assert BLAST_RADIUS == 2

    def test_distance_one_dominates(self):
        assert distance_weight(1) == 1.0
        assert 0 < distance_weight(2) < 0.1

    def test_beyond_blast_radius_zero(self):
        assert distance_weight(3) == 0.0
        assert distance_weight(10) == 0.0

    def test_invalid_distance_rejected(self):
        with pytest.raises(ConfigError):
            distance_weight(0)


class TestHammerDose:
    def test_zero_dose(self):
        assert ZERO_DOSE.is_zero
        assert ZERO_DOSE.effective() == 0.0

    def test_add_is_functional(self):
        dose = ZERO_DOSE.add(1, 100)
        assert ZERO_DOSE.is_zero  # original unchanged
        assert dose.near == 100

    def test_add_by_distance(self):
        dose = ZERO_DOSE.add(1, 10).add(2, 1000)
        assert dose.near == 10
        assert dose.far == 1000

    def test_distance_beyond_radius_ignored(self):
        dose = ZERO_DOSE.add(3, 1000)
        assert dose.is_zero

    def test_effective_weighs_far(self):
        dose = HammerDose(near=10, far=1000)
        assert dose.effective(far_weight=0.01) == pytest.approx(20.0)


class TestAccessPatternDoses:
    def test_double_sided_couples_both_sides(self):
        # N_RH counts activations per aggressor; the victim sees 2x.
        dose = double_sided_dose(5000)
        assert dose.near == 10_000
        assert dose.far == 0

    def test_double_sided_zero(self):
        assert double_sided_dose(0).is_zero

    def test_double_sided_negative_rejected(self):
        with pytest.raises(ConfigError):
            double_sided_dose(-1)

    def test_half_double_split(self):
        dose = half_double_dose(far_hammers=60_000, near_hammers=300)
        assert dose.far == 60_000
        assert dose.near == 300

    def test_half_double_negative_rejected(self):
        with pytest.raises(ConfigError):
            half_double_dose(-1, 0)
