"""Tests for DRAM timing parameters."""

import pytest

from repro.dram.timing import (
    TESTED_TRAS_FACTORS,
    TESTED_TRAS_NS,
    TimingParams,
    ddr4_timing,
    ddr5_timing,
)
from repro.errors import ConfigError


class TestDDR4:
    def test_nominal_tras_is_33ns(self):
        assert ddr4_timing().tRAS == 33.0

    def test_trc_is_48ns(self):
        # Table 4's t_FCRI values are computed with tRC = 48 ns.
        assert ddr4_timing().tRC == 48.0

    def test_refresh_window_64ms(self):
        assert ddr4_timing().tREFW == 64e6

    def test_refresh_interval_7_8us(self):
        assert ddr4_timing().tREFI == 7800.0

    def test_preventive_refresh_latency(self):
        timing = ddr4_timing()
        assert timing.preventive_refresh_latency == timing.tRAS + timing.tRP


class TestDDR5:
    def test_refresh_window_32ms(self):
        assert ddr5_timing().tREFW == 32e6

    def test_refresh_interval_3_9us(self):
        assert ddr5_timing().tREFI == 3900.0

    def test_trfc_195ns(self):
        assert ddr5_timing().tRFC == 195.0


class TestTestedLatencies:
    def test_factors_match_absolute_values(self):
        nominal = ddr4_timing().tRAS
        for factor, ns in zip(TESTED_TRAS_FACTORS, TESTED_TRAS_NS):
            assert factor * nominal == pytest.approx(ns, abs=0.35)

    def test_seven_points(self):
        assert len(TESTED_TRAS_FACTORS) == 7
        assert TESTED_TRAS_FACTORS[0] == 1.00
        assert TESTED_TRAS_FACTORS[-1] == 0.18


class TestReducedTras:
    def test_scales_only_tras(self):
        timing = ddr4_timing()
        reduced = timing.with_reduced_tras(0.36)
        assert reduced.tRAS == pytest.approx(33.0 * 0.36)
        assert reduced.tRP == timing.tRP
        assert reduced.tRCD == timing.tRCD

    def test_identity_factor(self):
        timing = ddr4_timing()
        assert timing.with_reduced_tras(1.0).tRAS == timing.tRAS

    @pytest.mark.parametrize("factor", [0.0, -0.5, 1.5])
    def test_invalid_factor_rejected(self, factor):
        with pytest.raises(ConfigError):
            ddr4_timing().with_reduced_tras(factor)


class TestValidation:
    def test_negative_timing_rejected(self):
        with pytest.raises(ConfigError):
            TimingParams(standard="X", tRAS=-1, tRP=15, tRCD=14, tCL=14,
                         tWR=15, tRFC=350, tREFI=7800, tREFW=64e6,
                         tBL=3.3, tCCD=5, tRRD=5, tFAW=21)

    def test_trefi_must_be_below_trefw(self):
        with pytest.raises(ConfigError):
            TimingParams(standard="X", tRAS=33, tRP=15, tRCD=14, tCL=14,
                         tWR=15, tRFC=350, tREFI=64e6, tREFW=64e6,
                         tBL=3.3, tCCD=5, tRRD=5, tFAW=21)
