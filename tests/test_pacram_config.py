"""Tests for PaCRAM configuration and the t_FCRI formula (§8.3)."""

import pytest

from repro.characterization.results import ModuleCharacterization, RowMeasurement
from repro.core.config import PaCRAMConfig, full_charge_restoration_interval_ns
from repro.dram.timing import ddr4_timing
from repro.errors import ConfigError
from repro.units import MS, S, US


class TestTfcriFormula:
    def test_paper_worked_example_s6(self):
        # §8.3: S6 at 0.36 tRAS (N_RH 3.9K, N_PCR 2K) -> ~374 ms.
        tfcri = full_charge_restoration_interval_ns(3_900, 12.0, 2_000)
        assert tfcri == pytest.approx(374 * MS, rel=0.01)

    def test_paper_worked_example_h5(self):
        # Table 4: H5 at 0.27 tRAS (9.4K, 300) -> 135 ms.
        tfcri = full_charge_restoration_interval_ns(9_400, 9.0, 300)
        assert tfcri == pytest.approx(135 * MS, rel=0.01)

    def test_single_restoration_cell(self):
        # Table 4: S2 at 0.27 tRAS (19.9K, N_PCR 1) -> 955 us.
        tfcri = full_charge_restoration_interval_ns(19_900, 9.0, 1)
        assert tfcri == pytest.approx(955 * US, rel=0.01)

    def test_linear_in_npcr(self):
        one = full_charge_restoration_interval_ns(5_000, 12.0, 1)
        thousand = full_charge_restoration_interval_ns(5_000, 12.0, 1_000)
        assert thousand == pytest.approx(1_000 * one)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigError):
            full_charge_restoration_interval_ns(0, 12.0, 100)
        with pytest.raises(ConfigError):
            full_charge_restoration_interval_ns(100, -1.0, 100)
        with pytest.raises(ConfigError):
            full_charge_restoration_interval_ns(100, 12.0, 0)


class TestFromCatalog:
    def test_h5_at_best_factor(self):
        config = PaCRAMConfig.from_catalog("H5", 0.36)
        assert config.nrh_reduced == 10_200
        assert config.npcr == 15_000
        assert config.nrh_reduction_ratio == pytest.approx(1.0)

    def test_h5_at_027_scales_nrh(self):
        # §9.1: H5 at 0.27 -> 8 % reduction -> 1024 becomes 942-ish.
        config = PaCRAMConfig.from_catalog("H5", 0.27)
        assert config.scaled_nrh(1024) == pytest.approx(942, abs=3)
        assert config.scaled_nrh(32) == pytest.approx(29, abs=1)

    def test_na_cell_rejected(self):
        with pytest.raises(ConfigError, match="not applicable"):
            PaCRAMConfig.from_catalog("S6", 0.18)

    def test_invulnerable_module_rejected(self):
        with pytest.raises(ConfigError):
            PaCRAMConfig.from_catalog("H0", 0.36)

    def test_untested_factor_rejected(self):
        with pytest.raises(ConfigError):
            PaCRAMConfig.from_catalog("H5", 0.5)

    def test_footnote6_long_tfcri(self):
        # H5 at 0.36: t_FCRI 7.3 s >> tREFW, so all refreshes are partial.
        config = PaCRAMConfig.from_catalog("H5", 0.36)
        assert config.all_refreshes_partial(64 * MS)

    def test_footnote6_short_tfcri(self):
        # H5 at 0.27: t_FCRI 135 ms > 64 ms tREFW -> still all partial on
        # DDR4, but NOT with a 374 ms window.
        config = PaCRAMConfig.from_catalog("H5", 0.27)
        assert config.all_refreshes_partial(64 * MS)
        assert not config.all_refreshes_partial(1 * S)

    def test_ratio_never_scales_up(self):
        # Some Table-4 cells exceed nominal (measurement drift); PaCRAM must
        # never configure a *larger* threshold than requested.
        config = PaCRAMConfig.from_catalog("M2", 0.36)
        assert config.scaled_nrh(1024) <= 1024


class TestFromCharacterization:
    def _characterization(self) -> ModuleCharacterization:
        result = ModuleCharacterization("S6", seed=1)
        for factor, nrh in ((1.0, 8_000), (0.36, 6_400)):
            result.add(RowMeasurement(
                bank=0, row=10, tras_factor=factor, n_pr=1,
                temperature_c=80.0, wcdp="RS", nrh=nrh, ber=0.01))
        return result

    def test_builds_from_own_measurements(self):
        config = PaCRAMConfig.from_characterization(
            self._characterization(), 0.36, npcr=2_000)
        assert config.nrh_reduction_ratio == pytest.approx(0.8)
        expected = full_charge_restoration_interval_ns(
            6_400, 0.36 * ddr4_timing().tRAS, 2_000)
        assert config.tfcri_ns == pytest.approx(expected)

    def test_missing_baseline_rejected(self):
        result = ModuleCharacterization("S6", seed=1)
        result.add(RowMeasurement(
            bank=0, row=10, tras_factor=0.36, n_pr=1,
            temperature_c=80.0, wcdp="RS", nrh=6_400, ber=0.01))
        with pytest.raises(ConfigError):
            PaCRAMConfig.from_characterization(result, 0.36, npcr=100)

    def test_retention_failing_point_rejected(self):
        result = self._characterization()
        result.add(RowMeasurement(
            bank=0, row=11, tras_factor=0.18, n_pr=1,
            temperature_c=80.0, wcdp="RS", nrh=0, ber=0.5))
        with pytest.raises(ConfigError):
            PaCRAMConfig.from_characterization(result, 0.18, npcr=100)


class TestValidation:
    def test_scaled_nrh_rejects_nonpositive(self):
        config = PaCRAMConfig.from_catalog("H5", 0.36)
        with pytest.raises(ConfigError):
            config.scaled_nrh(0)

    def test_constructor_validation(self):
        with pytest.raises(ConfigError):
            PaCRAMConfig("X", 1.5, 1.0, 100, 10, 1e6)
        with pytest.raises(ConfigError):
            PaCRAMConfig("X", 0.36, 1.0, 100, 0, 1e6)
