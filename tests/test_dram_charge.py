"""Tests for the charge-restoration physics (the calibrated device core)."""

import pytest

from repro.dram.catalog import module_spec
from repro.dram.charge import UNLIMITED_NPCR, ChargeModel, interpolate_curve
from repro.dram.timing import TESTED_TRAS_FACTORS
from repro.errors import ConfigError
from repro.units import MS


def model(module_id: str) -> ChargeModel:
    return ChargeModel(module_spec(module_id))


class TestInterpolateCurve:
    def test_linear_between_anchors(self):
        assert interpolate_curve({0.0: 0.0, 1.0: 10.0}, 0.25) == pytest.approx(2.5)

    def test_clamps_outside(self):
        curve = {0.2: 1.0, 0.8: 3.0}
        assert interpolate_curve(curve, 0.0) == 1.0
        assert interpolate_curve(curve, 1.0) == 3.0

    def test_exact_anchor(self):
        assert interpolate_curve({0.5: 7.0, 1.0: 9.0}, 0.5) == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            interpolate_curve({}, 0.5)


class TestNrhRatio:
    def test_nominal_is_one(self):
        for module_id in ("H5", "M2", "S6"):
            assert model(module_id).nrh_ratio(1.0) == pytest.approx(1.0, abs=0.01)

    def test_matches_catalog_at_anchors(self):
        # The model's single-restoration curve is the Table-3 curve.
        for module_id in ("H5", "M2", "S6", "S1", "H8"):
            spec = module_spec(module_id)
            charge = model(module_id)
            for factor in TESTED_TRAS_FACTORS:
                published = spec.nrh_ratio(factor)
                if published:  # skip retention-fail anchors
                    assert charge.nrh_ratio(factor) == pytest.approx(
                        published, rel=0.02), f"{module_id}@{factor}"

    def test_takeaway1_safe_reduction(self):
        # Takeaway 1: reducing to the vendor-safe latency changes N_RH < 3 %.
        assert model("H3").nrh_ratio(0.36) >= 0.93
        assert model("M2").nrh_ratio(0.18) >= 0.97

    def test_repeated_restoration_flat_for_h_m(self):
        # Fig. 12: H and M essentially unaffected by up to 15K restorations.
        # Tolerance 20 %: the paper's own Table-3 vs Table-4 campaigns drift
        # by up to 13 % for module M2 (42.6K vs 37.1K), which the model's
        # anchors inherit.
        for module_id in ("H7", "M2"):
            charge = model(module_id)
            single = charge.nrh_ratio(0.36, 1)
            many = charge.nrh_ratio(0.36, 15_000)
            assert abs(many - single) / single < 0.20

    def test_repeated_restoration_decays_for_s(self):
        # Fig. 12: S6's N_RH decreases with restorations at 0.36 tRAS.
        charge = model("S6")
        assert charge.nrh_ratio(0.36, 2_000) < charge.nrh_ratio(0.36, 1)

    def test_invalid_npr_rejected(self):
        with pytest.raises(ConfigError):
            model("S6").nrh_ratio(0.36, 0)

    def test_invalid_factor_rejected(self):
        with pytest.raises(ConfigError):
            model("S6").nrh_ratio(0.0)

    def test_temperature_effect_tiny(self):
        # Takeaway 4: < 0.31 % change across 50 -> 80 C.
        charge = model("H5")
        cold = charge.nrh_ratio(0.45, temperature_c=50.0)
        hot = charge.nrh_ratio(0.45, temperature_c=80.0)
        assert abs(cold - hot) / hot < 0.005


class TestNpcrLimit:
    def test_nominal_unlimited(self):
        assert model("S6").npcr_limit(1.0) == UNLIMITED_NPCR

    def test_s6_limits(self):
        charge = model("S6")
        assert charge.npcr_limit(0.36) == pytest.approx(2_000, rel=0.05)
        assert charge.npcr_limit(0.27) == 1
        assert charge.npcr_limit(0.18) == 0

    def test_h5_limit_at_027(self):
        assert model("H5").npcr_limit(0.27) == pytest.approx(300, rel=0.05)

    def test_invulnerable_module_unlimited(self):
        assert model("H0").npcr_limit(0.18) == UNLIMITED_NPCR

    def test_monotone_nonincreasing_at_anchors(self):
        charge = model("S6")
        limits = [charge.npcr_limit(f) for f in (0.81, 0.64, 0.45, 0.36, 0.27, 0.18)]
        assert all(a >= b for a, b in zip(limits, limits[1:]))


class TestRetention:
    def test_nominal_never_fails_64ms(self):
        for module_id in ("H5", "M2", "S6"):
            assert not model(module_id).retention_fails(1.0, 1)

    def test_within_limit_never_fails_64ms(self):
        # Table 4 semantics: inside the safe envelope, 64 ms retention holds.
        charge = model("S6")
        assert not charge.retention_fails(0.36, 2_000)
        assert not charge.retention_fails(0.27, 1)

    def test_beyond_limit_weakest_row_fails(self):
        charge = model("S6")
        assert charge.retention_fails(0.36, 2_500, row_strength=1.0)
        assert charge.retention_fails(0.27, 2, row_strength=1.0)

    def test_strong_rows_survive_small_overrun(self):
        charge = model("S6")
        assert not charge.retention_fails(0.36, 2_500, row_strength=3.0)

    def test_fraction_zero_within_envelope(self):
        charge = model("M2")
        assert charge.retention_fail_fraction(0.27, 10, 64 * MS) == 0.0

    def test_fig14_s_fails_at_027_x10_256ms(self):
        # Fig. 14 obs. 5/6: S rows fail 256 ms at 0.27 but not at 0.36.
        charge = model("S6")
        assert charge.retention_fail_fraction(0.27, 1, 256 * MS) > 0.0

    def test_fig14_restoration_count_amplifies_s(self):
        charge = model("S6")
        once = charge.retention_fail_fraction(0.27, 1, 256 * MS)
        ten = charge.retention_fail_fraction(0.27, 10, 256 * MS)
        assert ten > once

    def test_fig14_m_flat(self):
        # Fig. 14 obs. 3: Mfr. M unaffected by reduced latency.
        charge = model("M2")
        assert charge.retention_fail_fraction(0.27, 10, 512 * MS) == 0.0

    def test_temperature_worsens_retention(self):
        charge = model("S6")
        hot = charge.retention_fail_fraction(0.27, 10, 512 * MS,
                                             temperature_c=80.0)
        cold = charge.retention_fail_fraction(0.27, 10, 512 * MS,
                                              temperature_c=50.0)
        assert hot >= cold

    def test_fraction_monotone_in_wait(self):
        charge = model("S6")
        waits = [96 * MS, 256 * MS, 512 * MS, 1024 * MS]
        fracs = [charge.retention_fail_fraction(0.27, 10, w) for w in waits]
        assert all(a <= b for a, b in zip(fracs, fracs[1:]))
