"""Tests for the Appendix-B periodic extension, area model, and §10 costs."""

import pytest

from repro.core.area import (
    MEMORY_CONTROLLER_MM2,
    XEON_DIE_MM2,
    access_latency_hidden,
    fr_access_latency_ns,
    fr_area_fraction_of_controller,
    fr_area_fraction_of_xeon,
    fr_area_mm2,
    fr_storage_bytes,
)
from repro.core.periodic import PeriodicPaCRAM
from repro.core.profiling import profiling_cost
from repro.errors import ConfigError
from repro.sim.config import SystemConfig


class TestPeriodicPaCRAM:
    def test_reduced_scale_most_windows(self):
        config = SystemConfig(num_cores=1)
        policy = PeriodicPaCRAM(config, latency_factor_rfc=0.36, npcr=10)
        scale = policy.periodic_refresh_scale()
        assert scale == pytest.approx(0.36)

    def test_nominal_window_every_npcr(self):
        config = SystemConfig(num_cores=1)
        policy = PeriodicPaCRAM(config, latency_factor_rfc=0.36, npcr=2)
        per_window = round(config.timing.tREFW / config.timing.tREFI)
        scales = [policy.periodic_refresh_scale()
                  for _ in range(per_window * 4)]
        assert 1.0 in scales  # a full-restoration window occurs
        assert scales.count(1.0) >= per_window - 1

    def test_preventive_refreshes_stay_nominal(self):
        config = SystemConfig(num_cores=1)
        policy = PeriodicPaCRAM(config, latency_factor_rfc=0.36)
        tras, full = policy.preventive_tras_ns(0, 5, 0.0)
        assert full and tras == config.timing.tRAS

    def test_invalid_params_rejected(self):
        config = SystemConfig(num_cores=1)
        with pytest.raises(ConfigError):
            PeriodicPaCRAM(config, latency_factor_rfc=0.0)
        with pytest.raises(ConfigError):
            PeriodicPaCRAM(config, latency_factor_rfc=0.5, npcr=0)


class TestAreaModel:
    def test_8kb_per_bank(self):
        # §8.4: one bit per row -> 8 KB per 64K-row bank.
        assert fr_storage_bytes(65_536) == 8192

    def test_bank_area_matches_cacti(self):
        assert fr_area_mm2(1) == pytest.approx(0.0069, rel=0.01)

    def test_system_area_fraction_of_xeon(self):
        # §8.4: dual-rank x 16 banks -> 0.09 % of a high-end Xeon.
        assert fr_area_fraction_of_xeon(32) == pytest.approx(0.0009, rel=0.05)

    def test_fraction_of_memory_controller(self):
        # §8.4: 1.35 % of the memory-controller area.
        assert fr_area_fraction_of_controller(32) == pytest.approx(
            0.0135, rel=0.05)

    def test_access_latency_hidden_by_activation(self):
        assert fr_access_latency_ns() == pytest.approx(0.27)
        assert access_latency_hidden()

    def test_scales_with_rows(self):
        assert fr_area_mm2(1, 131_072) == pytest.approx(2 * 0.0069, rel=0.01)

    def test_reference_areas_positive(self):
        assert XEON_DIE_MM2 > MEMORY_CONTROLLER_MM2 > 0

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigError):
            fr_storage_bytes(0)
        with pytest.raises(ConfigError):
            fr_area_mm2(0)


class TestProfilingCost:
    def test_paper_numbers(self):
        cost = profiling_cost()
        assert cost.batch_seconds == pytest.approx(80.0)
        assert cost.throughput_bytes_per_s == pytest.approx(127 * 1024, rel=0.01)
        assert cost.bank_minutes == pytest.approx(68.8, abs=0.1)
        assert cost.blocked_bytes == pytest.approx(9.9 * 2**20, rel=0.01)

    def test_scales_with_matrix(self):
        half = profiling_cost(iterations=1)
        assert half.batch_seconds == pytest.approx(16.0)
        assert half.bank_minutes < profiling_cost().bank_minutes

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigError):
            profiling_cost(tras_values=0)
