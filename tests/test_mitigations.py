"""Tests for the five RowHammer mitigation mechanisms."""

import pytest

from repro.errors import ConfigError
from repro.mitigations import MITIGATION_CLASSES, make_mitigation
from repro.mitigations.base import (
    BLAST_ROWS,
    MetadataAccess,
    NoMitigation,
    PreventiveRefresh,
    RfmCommand,
)
from repro.mitigations.graphene import Graphene, _BankTable
from repro.mitigations.hydra import Hydra
from repro.mitigations.para import PARA
from repro.mitigations.prac import PRAC
from repro.mitigations.rfm import RFM


class TestFactory:
    def test_all_five_plus_none(self):
        assert set(MITIGATION_CLASSES) == {
            "None", "PARA", "RFM", "PRAC", "Hydra", "Graphene"}

    def test_make_by_name(self):
        assert isinstance(make_mitigation("PARA", 1024), PARA)
        assert isinstance(make_mitigation("None", 1), NoMitigation)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_mitigation("TRR", 1024)

    def test_invalid_nrh_rejected(self):
        with pytest.raises(ConfigError):
            make_mitigation("PARA", 0)


class TestNoMitigation:
    def test_never_acts(self):
        mech = NoMitigation()
        for i in range(1000):
            assert mech.on_activation(0, i % 7, float(i)) == []


class TestPARA:
    def test_probability_scales_inversely_with_nrh(self):
        assert PARA(32).probability > PARA(1024).probability

    def test_probability_capped_at_one(self):
        assert PARA(1).probability == 1.0

    def test_trigger_rate_matches_probability(self):
        mech = PARA(64, seed=5)
        triggers = sum(bool(mech.on_activation(0, 5, 0.0))
                       for _ in range(20_000))
        expected = mech.probability * 20_000
        assert triggers == pytest.approx(expected, rel=0.15)

    def test_refreshes_one_side(self):
        mech = PARA(2, seed=1)  # p = 1: always triggers
        actions = mech.on_activation(0, 100, 0.0)
        assert len(actions) == 1
        action = actions[0]
        assert isinstance(action, PreventiveRefresh)
        assert action.victim_offsets in ((1, 2), (-1, -2))

    def test_negligible_area(self):
        assert PARA(32).area_mm2(32) < 0.01


class TestRFM:
    def test_triggers_every_raaimt_acts(self):
        mech = RFM(64)  # RAAIMT = 8
        triggers = 0
        for i in range(80):
            if mech.on_activation(0, i, 0.0):
                triggers += 1
        assert triggers == 80 // mech.raaimt

    def test_bank_counters_independent(self):
        mech = RFM(64)
        for i in range(mech.raaimt - 1):
            assert mech.on_activation(0, i, 0.0) == []
        assert mech.on_activation(1, 0, 0.0) == []  # other bank unaffected

    def test_emits_rfm_command(self):
        mech = RFM(8, raaimt=1)
        actions = mech.on_activation(3, 7, 0.0)
        assert isinstance(actions[0], RfmCommand)
        assert actions[0].flat_bank == 3
        assert not actions[0].is_backoff

    def test_refresh_window_resets(self):
        mech = RFM(64)
        for i in range(mech.raaimt - 1):
            mech.on_activation(0, i, 0.0)
        mech.on_refresh_window(1e9)
        assert mech.on_activation(0, 0, 1e9) == []


class TestPRAC:
    def test_has_act_penalty(self):
        assert PRAC(1024).act_penalty_ns > 0

    def test_backoff_at_threshold(self):
        mech = PRAC(100)  # threshold = 40
        actions = []
        for i in range(mech.threshold):
            actions = mech.on_activation(0, 55, float(i))
        assert isinstance(actions[0], RfmCommand)
        assert actions[0].is_backoff

    def test_per_row_tracking(self):
        mech = PRAC(100)
        # Spread across rows: no single row reaches the threshold.
        for i in range(200):
            assert mech.on_activation(0, i, 0.0) == []

    def test_counter_resets_after_backoff(self):
        mech = PRAC(10)  # threshold = 4
        for i in range(mech.threshold):
            last = mech.on_activation(0, 5, 0.0)
        assert last
        for i in range(mech.threshold - 1):
            assert mech.on_activation(0, 5, 0.0) == []

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ConfigError):
            PRAC(100, backoff_fraction=0.0)


class TestHydra:
    def test_group_tier_absorbs_cold_traffic(self):
        mech = Hydra(1024)
        for i in range(mech.group_threshold - 1):
            assert mech.on_activation(0, i % 8, 0.0) == []

    def test_hot_group_falls_to_row_tracking(self):
        mech = Hydra(64)
        actions_seen = []
        for i in range(200):
            actions_seen += mech.on_activation(0, 5, 0.0)
        refreshes = [a for a in actions_seen
                     if isinstance(a, PreventiveRefresh)]
        assert refreshes  # the hot row eventually gets refreshed

    def test_rcc_miss_costs_dram_traffic(self):
        mech = Hydra(64)
        actions = []
        for i in range(mech.group_threshold + 1):
            actions = mech.on_activation(0, 5, 0.0)
        metadata = [a for a in actions if isinstance(a, MetadataAccess)]
        assert metadata and metadata[0].reads == 1

    def test_rcc_eviction_writes_back(self):
        mech = Hydra(64, rcc_entries=2)
        # Heat one group, then touch more rows than the RCC holds.
        for _ in range(mech.group_threshold):
            mech.on_activation(0, 0, 0.0)
        writes = 0
        for row in range(1, 8):
            for _ in range(mech.group_threshold):
                for action in mech.on_activation(0, row, 0.0):
                    if isinstance(action, MetadataAccess):
                        writes += action.writes
        assert writes > 0

    def test_fixed_sram_area(self):
        # Hydra's selling point: area independent of N_RH.
        assert Hydra(32).area_mm2(32) == Hydra(1024).area_mm2(32)


class TestGraphene:
    def test_tracks_hot_row_exactly(self):
        mech = Graphene(100)  # threshold = 25
        actions = []
        for i in range(mech.threshold):
            actions = mech.on_activation(0, 42, 0.0)
        assert isinstance(actions[0], PreventiveRefresh)
        assert actions[0].aggressor_row == 42

    def test_no_false_triggers_below_threshold(self):
        mech = Graphene(1000)
        for i in range(2000):
            assert mech.on_activation(0, i % 500, 0.0) == [], i

    def test_area_grows_as_nrh_shrinks(self):
        assert Graphene(32).area_mm2(32) > Graphene(1024).area_mm2(32)

    def test_area_matches_paper_at_nrh32(self):
        # §3: 10.38 mm^2 at N_RH = 32 for a dual-rank 32-bank system.
        assert Graphene(32).area_mm2(32) == pytest.approx(10.38, rel=0.08)

    def test_misra_gries_guarantee(self):
        # Any row activated more than the threshold must be caught, no
        # matter how much other traffic there is.
        table = _BankTable(capacity=8)
        # Interleave one hot row with many cold rows.
        hot_estimate = 0
        hot_true = 0
        for i in range(400):
            table.observe(1000 + i)  # cold stream
            hot_estimate = table.observe(7)
            hot_true += 1
        assert hot_estimate >= hot_true  # overestimate, never underestimate

    def test_blast_rows_constant(self):
        assert BLAST_ROWS == 4
