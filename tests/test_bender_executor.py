"""Tests for the program executor."""

import pytest

from repro.bender.executor import ProgramExecutor
from repro.bender.isa import WriteRow
from repro.bender.program import TestProgram
from repro.dram.disturbance import DataPattern
from repro.dram.module import DRAMModule
from repro.errors import ProgramError
from repro.units import MS


@pytest.fixture()
def module() -> DRAMModule:
    return DRAMModule("H5", seed=11)


@pytest.fixture()
def executor(module) -> ProgramExecutor:
    return ProgramExecutor(module)


class TestProtocolInvariants:
    def test_act_to_open_bank_rejected(self, executor):
        program = TestProgram().act(0, 1).act(0, 2)
        with pytest.raises(ProgramError, match="open bank"):
            executor.execute(program)

    def test_pre_on_closed_bank_rejected(self, executor):
        program = TestProgram().pre(0)
        with pytest.raises(ProgramError, match="closed bank"):
            executor.execute(program)

    def test_program_must_close_banks(self, executor):
        program = TestProgram().act(0, 1)
        with pytest.raises(ProgramError, match="still open"):
            executor.execute(program)

    def test_read_requires_precharged_bank(self, executor):
        program = TestProgram()
        program.instructions.append(WriteRow(0, 1, DataPattern.ROW_STRIPE))
        program.act(0, 2).check_bitflips(0, 1, key="x")
        with pytest.raises(ProgramError, match="precharged"):
            executor.execute(program)


class TestExecution:
    def test_clock_resets_per_program(self, executor, module):
        program = TestProgram().act(0, 1).pre(0)
        executor.execute(program)
        first_end = module.clock_ns
        executor.execute(program)
        assert module.clock_ns == pytest.approx(first_end)

    def test_act_pre_applies_reduced_tras(self, executor, module):
        program = TestProgram()
        program.init_rows(0, 5, (), DataPattern.ROW_STRIPE)
        program.act(0, 5, wait_ns=12.0).pre(0)
        executor.execute(program)
        assert module.row_state(0, 5).restore_factor == pytest.approx(12 / 33)

    def test_duration_reported(self, executor):
        program = TestProgram().sleep(1000.0)
        result = executor.execute(program)
        assert result.duration_ns == pytest.approx(1000.0)

    def test_sleep_until_noop_when_past(self, executor):
        program = TestProgram().sleep(2000.0).sleep_until(1000.0)
        result = executor.execute(program)
        assert result.duration_ns == pytest.approx(2000.0)

    def test_bitflips_recorded_by_key(self, executor):
        program = TestProgram()
        program.init_rows(0, 5, (), DataPattern.ROW_STRIPE)
        program.check_bitflips(0, 5, key="victim")
        result = executor.execute(program)
        assert result.flips("victim") == 0

    def test_full_hammer_program(self, executor, module):
        victim = 100
        aggressors = module.mapping.neighbors(victim, 1)
        program = TestProgram()
        program.init_rows(0, victim, aggressors, DataPattern.ROW_STRIPE)
        program.hammer_doublesided(0, aggressors, 100_000)
        program.sleep_until(64 * MS)
        program.check_bitflips(0, victim, key="victim")
        result = executor.execute(program)
        assert result.flips("victim") > 0
        assert result.duration_ns >= 64 * MS
