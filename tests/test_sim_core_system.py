"""Tests for the core model and the full simulated system."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.addrmap import AddressMapper
from repro.sim.config import SystemConfig
from repro.sim.core import CoreModel
from repro.sim.stats import weighted_speedup
from repro.sim.system import MemorySystem
from repro.workloads.trace import Trace


def make_trace(bubbles, addresses, writes=None, name="t") -> Trace:
    n = len(bubbles)
    return Trace(
        name=name,
        bubbles=np.asarray(bubbles, dtype=np.int64),
        is_write=np.asarray(writes if writes is not None else [False] * n),
        addresses=np.asarray(addresses, dtype=np.int64),
    )


@pytest.fixture()
def config() -> SystemConfig:
    return SystemConfig(num_cores=1)


@pytest.fixture()
def mapper(config) -> AddressMapper:
    return AddressMapper(config)


class TestCoreModel:
    def test_pump_emits_requests_in_order(self, config, mapper):
        trace = make_trace([10, 10, 10], [1, 2, 3])
        core = CoreModel(0, trace, config, mapper)
        requests = core.pump()
        assert len(requests) == 3
        arrivals = [r.arrival_ns for r in requests]
        assert arrivals == sorted(arrivals)

    def test_frontend_throughput(self, config, mapper):
        # 400 bubbles at 4-wide, 3.2 GHz: 100 cycles = 31.25 ns.
        trace = make_trace([400], [1])
        core = CoreModel(0, trace, config, mapper)
        request = core.pump()[0]
        assert request.arrival_ns == pytest.approx(400 / 4 / 3.2, rel=0.01)

    def test_window_limits_outstanding_reads(self, config, mapper):
        # Zero bubbles: the window holds 128 instructions = 128 reads.
        trace = make_trace([0] * 300, list(range(300)))
        core = CoreModel(0, trace, config, mapper)
        requests = core.pump()
        assert len(requests) == config.instruction_window

    def test_completion_releases_window(self, config, mapper):
        trace = make_trace([0] * 200, list(range(200)))
        core = CoreModel(0, trace, config, mapper)
        first_batch = core.pump()
        head = first_batch[0]
        head.completion_ns = 50.0
        core.note_completion(head)
        more = core.pump()
        assert more  # window slot freed
        assert all(r.arrival_ns >= 50.0 for r in more[:1])

    def test_writes_do_not_block_window(self, config, mapper):
        trace = make_trace([0] * 300, list(range(300)), writes=[True] * 300)
        core = CoreModel(0, trace, config, mapper)
        requests = core.pump()
        assert len(requests) == 300  # all emitted: stores retire immediately

    def test_finished_requires_all_loads_back(self, config, mapper):
        trace = make_trace([0, 0], [1, 2])
        core = CoreModel(0, trace, config, mapper)
        requests = core.pump()
        assert not core.finished()
        for i, request in enumerate(requests):
            request.completion_ns = 10.0 * (i + 1)
            core.note_completion(request)
        assert core.finished()

    def test_stats_before_finish_rejected(self, config, mapper):
        trace = make_trace([0], [1])
        core = CoreModel(0, trace, config, mapper)
        core.pump()
        with pytest.raises(SimulationError):
            core.stats()

    def test_waiting_for_memory_reports_window_stall(self, config, mapper):
        trace = make_trace([0] * 200, list(range(200)))
        core = CoreModel(0, trace, config, mapper)
        requests = core.pump()
        assert core.waiting_for_memory()  # window full, head unserviced
        head = requests[0]
        head.completion_ns = 10.0
        core.note_completion(head)
        core.pump()
        # After draining, either more issued or still stalled on a new head.
        assert core.trace_exhausted() or core.waiting_for_memory() or \
            not core.finished()

    def test_address_offset_applied(self, config, mapper):
        trace = make_trace([0], [100])
        core = CoreModel(1, trace, config, mapper, address_offset=1 << 20)
        request = core.pump()[0]
        assert request.address == 100 + (1 << 20)


class TestMemorySystem:
    def test_single_core_completes(self, config, small_trace):
        result = MemorySystem(config, [small_trace]).run()
        assert result.total_instructions == small_trace.instructions
        assert 0 < result.mean_ipc <= config.issue_width

    def test_deterministic(self, config, small_trace):
        a = MemorySystem(config, [small_trace]).run()
        b = MemorySystem(config, [small_trace]).run()
        assert a.mean_ipc == b.mean_ipc
        assert a.energy_nj == b.energy_nj

    def test_multicore_contention_slows_cores(self, small_trace):
        single = MemorySystem(SystemConfig(num_cores=1), [small_trace]).run()
        quad = MemorySystem(SystemConfig(num_cores=4),
                            [small_trace] * 4).run()
        assert quad.ipc[0] < single.ipc[0]

    def test_too_many_traces_rejected(self, config, small_trace):
        with pytest.raises(SimulationError):
            MemorySystem(config, [small_trace, small_trace])

    def test_empty_traces_rejected(self, config):
        with pytest.raises(SimulationError):
            MemorySystem(config, [])

    def test_energy_breakdown_sums_to_total(self, config, small_trace):
        result = MemorySystem(config, [small_trace]).run()
        assert sum(result.energy_breakdown.values()) == pytest.approx(
            result.energy_nj)

    def test_write_heavy_trace_completes(self, config, mapper):
        trace = make_trace([5] * 500, list(range(500)),
                           writes=[True] * 500)
        result = MemorySystem(config, [trace]).run()
        assert result.controller_stats.writes == 500


class TestWeightedSpeedup:
    def test_identity(self):
        ipcs = {0: 1.0, 1: 2.0}
        assert weighted_speedup(ipcs, ipcs) == pytest.approx(2.0)

    def test_slowdown_below_count(self):
        assert weighted_speedup({0: 0.5}, {0: 1.0}) == pytest.approx(0.5)

    def test_mismatched_cores_rejected(self):
        with pytest.raises(SimulationError):
            weighted_speedup({0: 1.0}, {1: 1.0})

    def test_zero_baseline_rejected(self):
        with pytest.raises(SimulationError):
            weighted_speedup({0: 1.0}, {0: 0.0})
