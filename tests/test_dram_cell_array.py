"""Tests for per-row cell populations."""

import math

import pytest

from repro.dram.catalog import module_spec
from repro.dram.cell_array import RowPopulation
from repro.dram.charge import ChargeModel
from repro.dram.disturbance import (
    ALL_PATTERNS,
    DataPattern,
    HammerDose,
    double_sided_dose,
)
from repro.rng import SeedTree


def make_row(module_id: str, row: int = 100, seed: int = 2025) -> RowPopulation:
    spec = module_spec(module_id)
    return RowPopulation(spec, ChargeModel(spec), 0, row,
                         SeedTree(seed).child("module", module_id))


class TestTraits:
    def test_deterministic_per_row(self):
        a = make_row("S6", 7)
        b = make_row("S6", 7)
        assert a.traits.base_nrh == b.traits.base_nrh
        assert a.traits.sensitivity == b.traits.sensitivity

    def test_distinct_rows_differ(self):
        a = make_row("S6", 7)
        b = make_row("S6", 8)
        assert a.traits.base_nrh != b.traits.base_nrh

    def test_base_nrh_above_module_minimum(self):
        minimum = module_spec("S6").nominal_nrh
        for row in range(50):
            assert make_row("S6", row).traits.base_nrh >= minimum

    def test_invulnerable_module_infinite(self):
        row = make_row("H0")
        assert math.isinf(row.traits.base_nrh)
        assert row.effective_nrh() == math.inf

    def test_sample_minimum_tracks_catalog(self):
        minimum = module_spec("H5").nominal_nrh
        values = [make_row("H5", r).effective_nrh() for r in range(2000)]
        assert min(values) == pytest.approx(minimum, rel=0.05)


class TestWorstCasePattern:
    def test_among_the_six(self):
        assert make_row("S6").worst_case_pattern() in ALL_PATTERNS

    def test_varies_across_rows(self):
        patterns = {make_row("H5", r).worst_case_pattern() for r in range(200)}
        assert len(patterns) >= 2


class TestHammerFlips:
    def test_no_flips_below_threshold(self):
        row = make_row("S6")
        nrh = row.effective_nrh(pattern=row.worst_case_pattern())
        dose = double_sided_dose(int(nrh * 0.9))
        assert row.hammer_flips(dose, pattern=row.worst_case_pattern()) == 0

    def test_flips_at_threshold(self):
        row = make_row("S6")
        pattern = row.worst_case_pattern()
        nrh = row.effective_nrh(pattern=pattern)
        dose = double_sided_dose(int(nrh) + 1)
        assert row.hammer_flips(dose, pattern=pattern) >= 1

    def test_flips_monotone_in_dose(self):
        row = make_row("S6")
        pattern = row.worst_case_pattern()
        counts = [row.hammer_flips(double_sided_dose(hc), pattern=pattern)
                  for hc in (10_000, 30_000, 100_000, 300_000)]
        assert all(a <= b for a, b in zip(counts, counts[1:]))

    def test_weaker_pattern_fewer_flips(self):
        row = make_row("S6")
        worst = row.worst_case_pattern()
        weak = min(ALL_PATTERNS,
                   key=lambda p: row.traits.pattern_effectiveness[p])
        dose = double_sided_dose(100_000)
        assert (row.hammer_flips(dose, pattern=weak)
                <= row.hammer_flips(dose, pattern=worst))

    def test_reduced_latency_lowers_threshold_for_s(self):
        row = make_row("S6")
        assert row.effective_nrh(0.27) < row.effective_nrh(1.0)

    def test_ber_superlinear_under_reduction(self):
        # Fig. 9: BER grows superlinearly as restoration weakens (Mfr. S).
        row = make_row("S6")
        pattern = row.worst_case_pattern()
        dose = double_sided_dose(100_000)
        nominal = row.hammer_flips(dose, factor=1.0, pattern=pattern)
        reduced = row.hammer_flips(dose, factor=0.27, pattern=pattern)
        assert reduced > nominal

    def test_flat_for_m_at_any_latency(self):
        row = make_row("M2")
        assert row.effective_nrh(0.18) == pytest.approx(
            row.effective_nrh(1.0), rel=0.10)


class TestRetentionFlips:
    def test_none_at_nominal(self):
        assert make_row("S6").retention_flips(factor=1.0) == 0

    def test_weak_rows_fail_beyond_limit(self):
        # S6 at 0.18 tRAS: retention bitflips without hammering.
        flips = [make_row("S6", r).retention_flips(factor=0.18)
                 for r in range(300)]
        assert any(f > 0 for f in flips)
        assert not all(f > 0 for f in flips)  # only the weak tail fails


class TestHalfDouble:
    def test_h_has_vulnerable_rows(self):
        vulnerable = sum(make_row("H7", r).halfdouble_vulnerable(1.0)
                         for r in range(400))
        assert vulnerable > 10

    def test_s_and_m_have_none(self):
        for module_id in ("S6", "M2"):
            assert not any(make_row(module_id, r).halfdouble_vulnerable(1.0)
                           for r in range(400))

    def test_prevalence_dips_at_036(self):
        # Fig. 13: ~39 % fewer rows with bitflips at 0.36 tRAS.
        at_nominal = sum(make_row("H7", r).halfdouble_vulnerable(1.0)
                         for r in range(2000))
        at_036 = sum(make_row("H7", r).halfdouble_vulnerable(0.36)
                     for r in range(2000))
        assert at_036 < at_nominal

    def test_prevalence_spikes_at_018(self):
        at_nominal = sum(make_row("H7", r).halfdouble_vulnerable(1.0)
                         for r in range(2000))
        at_018 = sum(make_row("H7", r).halfdouble_vulnerable(0.18)
                     for r in range(2000))
        assert at_018 > at_nominal


class TestDoseUnits:
    def test_double_sided_equivalence(self):
        # A dose of 2*HC near activations equals HC per-aggressor hammers.
        row = make_row("S6")
        pattern = row.worst_case_pattern()
        nrh = row.effective_nrh(pattern=pattern)
        manual = HammerDose(near=2 * (int(nrh) + 1), far=0)
        assert row.hammer_flips(manual, pattern=pattern) >= 1
