"""Tests for the test-program assembly format."""

import pytest

from repro.bender.assembly import dumps, loads
from repro.bender.executor import ProgramExecutor
from repro.bender.program import TestProgram
from repro.dram.disturbance import DataPattern
from repro.dram.module import DRAMModule
from repro.errors import ProgramError
from repro.units import MS


def sample_program() -> TestProgram:
    program = TestProgram()
    program.init_rows(0, 1000, (999, 1001), DataPattern.ROW_STRIPE)
    program.partial_restoration(0, 1000, 12.0, 2)
    program.partial_restoration(0, 1000, 12.0, 500)  # bulk macro
    program.hammer_doublesided(0, (999, 1001), 60_000)
    program.sleep(100.0)
    program.sleep_until(64 * MS)
    program.check_bitflips(0, 1000, key="victim")
    return program


class TestRoundTrip:
    def test_all_instruction_kinds(self):
        program = sample_program()
        restored = loads(dumps(program))
        assert restored.instructions == program.instructions

    def test_replay_matches_original(self):
        module_a = DRAMModule("H5", seed=3)
        module_b = DRAMModule("H5", seed=3)
        program = sample_program()
        original = ProgramExecutor(module_a).execute(program)
        replayed = ProgramExecutor(module_b).execute(loads(dumps(program)))
        assert replayed.bitflips == original.bitflips
        assert replayed.duration_ns == original.duration_ns

    def test_comments_and_blanks_ignored(self):
        text = """
        # a characterization program
        SLEEP  ns=50.0   # wait a bit

        SLEEPU target=100.0
        """
        program = loads(text)
        assert len(program) == 2

    def test_listing_is_readable(self):
        listing = dumps(sample_program())
        assert "HAMMER bank=0 rows=999,1001 count=60000" in listing
        assert "pattern=RS" in listing


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(ProgramError, match="line 1"):
            loads("NOP")

    def test_missing_operand(self):
        with pytest.raises(ProgramError, match="missing operand"):
            loads("ACT bank=0 row=5")

    def test_malformed_operand(self):
        with pytest.raises(ProgramError, match="malformed operand"):
            loads("SLEEP 100")

    def test_validation_still_applies(self):
        with pytest.raises(ProgramError):
            loads("ACT bank=0 row=5 wait=0.0")  # non-positive wait
