"""Property-based test: clean simulations never violate the protocol.

The checker models the DDR state machine independently of the controller;
any configuration drawn here that produces a violation means one of the two
models is wrong.  This is the validation subsystem's own soundness check —
the fault matrix proves violations *are* raised when faults exist, this
proves they are *not* raised when none do.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.runner import pacram_reference_config, run_simulation

MITIGATIONS = ("None", "PARA", "RFM", "PRAC", "Hydra", "Graphene")
VENDORS = (None, "H", "M", "S")


@settings(max_examples=12, deadline=None)
@given(
    mitigation=st.sampled_from(MITIGATIONS),
    nrh=st.sampled_from((64, 128, 512, 1024)),
    vendor=st.sampled_from(VENDORS),
    requests=st.integers(min_value=200, max_value=600),
    seed=st.integers(min_value=0, max_value=2 ** 16),
)
def test_clean_runs_have_zero_violations(mitigation, nrh, vendor,
                                         requests, seed):
    pacram = pacram_reference_config(vendor) if vendor else None
    result = run_simulation(
        ("spec06.mcf",), mitigation=mitigation, nrh=nrh, pacram=pacram,
        requests=requests, seed=seed, check_protocol="tolerant")
    assert result.protocol_violations == []
