"""Tests for worst-case-data-pattern statistics (§4.3)."""

from repro.characterization.results import ModuleCharacterization, RowMeasurement
from repro.characterization.sweeps import characterize_module
from repro.dram.disturbance import ALL_PATTERNS


def measurement(row, wcdp, factor=1.0):
    return RowMeasurement(bank=0, row=row, tras_factor=factor, n_pr=1,
                          temperature_c=80.0, wcdp=wcdp, nrh=5000, ber=0.01)


class TestWcdpHistogram:
    def test_counts_by_pattern(self):
        result = ModuleCharacterization("S6", seed=1)
        result.add(measurement(1, "RS"))
        result.add(measurement(2, "RS"))
        result.add(measurement(3, "CB"))
        assert result.wcdp_histogram() == {"RS": 2, "CB": 1}

    def test_filtered_by_factor(self):
        result = ModuleCharacterization("S6", seed=1)
        result.add(measurement(1, "RS", factor=1.0))
        result.add(measurement(1, "CS", factor=0.36))
        assert result.wcdp_histogram(1.0) == {"RS": 1}
        assert result.wcdp_histogram(0.36) == {"CS": 1}

    def test_real_campaign_uses_only_the_six_patterns(self):
        result = characterize_module("H5", tras_factors=(1.0,),
                                     per_region=8)
        histogram = result.wcdp_histogram()
        valid_names = {p.short_name for p in ALL_PATTERNS}
        assert set(histogram) <= valid_names
        assert sum(histogram.values()) == len(result.at(tras_factor=1.0))

    def test_row_stripes_dominate(self):
        # PATTERN_BASE_EFFECTIVENESS makes row stripes the usual winners.
        result = characterize_module("M2", tras_factors=(1.0,),
                                     per_region=16)
        histogram = result.wcdp_histogram()
        stripes = histogram.get("RS", 0) + histogram.get("RSI", 0)
        assert stripes > sum(histogram.values()) / 2
