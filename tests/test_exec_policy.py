"""The execution policy: the repository's single kernel-resolution site.

Covers the resolution precedence matrix, the once-per-invocation "oracle
forced" note, the deprecated per-stage CLI flags (which must keep working,
warn once, and stay byte-identical to their ``--kernel-policy``
equivalents), and a lint test that keeps kernel selection from leaking back
into individual layers.
"""

import re
import warnings
from pathlib import Path

import pytest

from repro.cli import main
from repro.errors import ConfigError
from repro.exec import (
    AUTO_KERNELS,
    KERNEL_POLICIES,
    STAGE_KERNELS,
    ExecutionPolicy,
    checked_kernel,
    default_policy,
    resolve_kernel,
    set_default_policy,
    validate_stage_kernel,
)
from repro.runtime import REPORT_NAME
from repro.validation import default_check_mode

SRC_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"


class TestResolutionMatrix:
    def test_auto_preserves_pre_policy_defaults(self):
        policy = ExecutionPolicy()
        for stage in STAGE_KERNELS:
            assert policy.kernel_for(stage) == AUTO_KERNELS[stage]

    def test_scalar_policy_runs_every_oracle(self):
        policy = ExecutionPolicy(kernel_policy="scalar")
        for stage, names in STAGE_KERNELS.items():
            assert policy.kernel_for(stage) == names[0]

    def test_fast_policy_runs_every_fast_path(self):
        policy = ExecutionPolicy(kernel_policy="fast")
        for stage, names in STAGE_KERNELS.items():
            assert policy.kernel_for(stage) == names[1]

    def test_array_policy_picks_array_tier_or_fastest(self):
        policy = ExecutionPolicy(kernel_policy="array")
        assert policy.kernel_for("device") == "array"
        assert policy.kernel_for("sim") == "array"
        # The host stage has no array tier; the fastest kernel stands in.
        assert policy.kernel_for("host") == "compiled"

    def test_stage_override_beats_policy(self):
        policy = ExecutionPolicy(kernel_policy="fast", sim_kernel="scalar")
        assert policy.kernel_for("sim") == "scalar"
        assert policy.kernel_for("device") == "vectorized"

    def test_explicit_beats_override_and_policy(self):
        policy = ExecutionPolicy(kernel_policy="scalar", sim_kernel="scalar")
        assert policy.kernel_for("sim", "batched") == "batched"

    def test_observer_forces_oracle_unless_explicit(self):
        policy = ExecutionPolicy(kernel_policy="fast")
        assert policy.kernel_for("sim", observer=True) == "scalar"
        assert policy.kernel_for("sim", "batched", observer=True) == "batched"

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError, match="kernel policy"):
            ExecutionPolicy(kernel_policy="ludicrous")

    def test_unknown_override_rejected(self):
        with pytest.raises(ConfigError, match="sim kernel"):
            ExecutionPolicy(sim_kernel="turbo")

    def test_unknown_stage_rejected(self):
        with pytest.raises(ConfigError, match="unknown execution stage"):
            validate_stage_kernel("gpu", "scalar")

    def test_policies_cover_stage_kernels(self):
        assert KERNEL_POLICIES == ("scalar", "fast", "array", "auto")
        for stage, names in STAGE_KERNELS.items():
            assert len(names) in (2, 3)
            assert AUTO_KERNELS[stage] in names


class TestCheckedResolution:
    @pytest.mark.parametrize("mode", ("tolerant", "strict"))
    def test_checking_forces_every_oracle(self, mode):
        policy = ExecutionPolicy(kernel_policy="fast", check_protocol=mode)
        for stage, names in STAGE_KERNELS.items():
            assert policy.checked_kernel_for(stage) == names[0]
            # Even an explicit fast-tier request is overridden.
            for fast in names[1:]:
                assert policy.checked_kernel_for(stage, fast) == names[0]

    def test_off_leaves_resolution_alone(self):
        policy = ExecutionPolicy(kernel_policy="fast")
        assert policy.checked_kernel_for("sim") == "batched"

    def test_per_call_mode_overrides_policy_mode(self):
        policy = ExecutionPolicy(kernel_policy="fast", check_protocol="off")
        assert policy.checked_kernel_for(
            "sim", check_protocol="strict") == "scalar"
        checked = ExecutionPolicy(check_protocol="strict")
        assert checked.checked_kernel_for(
            "sim", check_protocol="off") == "batched"

    def test_note_emitted_exactly_once_per_policy(self, capsys):
        policy = ExecutionPolicy(kernel_policy="fast",
                                 check_protocol="strict")
        for _ in range(3):
            policy.checked_kernel_for("sim")
            policy.checked_kernel_for("device")
        err = capsys.readouterr().err
        assert err.count("oracle") == 1

    def test_no_note_when_oracle_already_chosen(self, capsys):
        policy = ExecutionPolicy(kernel_policy="scalar",
                                 check_protocol="strict")
        policy.checked_kernel_for("sim")
        assert capsys.readouterr().err == ""

    def test_with_overrides_resets_the_note(self, capsys):
        policy = ExecutionPolicy(kernel_policy="fast",
                                 check_protocol="strict")
        policy.checked_kernel_for("sim")
        copy = policy.with_overrides()
        copy.checked_kernel_for("sim")
        assert capsys.readouterr().err.count("oracle") == 2

    def test_bad_mode_rejected(self):
        with pytest.raises(ConfigError, match="check-protocol"):
            ExecutionPolicy(check_protocol="paranoid")
        with pytest.raises(ConfigError, match="check-protocol"):
            ExecutionPolicy().checked_kernel_for(
                "sim", check_protocol="paranoid")


class TestDefaultPolicy:
    def test_module_shorthands_use_the_default(self):
        set_default_policy(ExecutionPolicy(kernel_policy="scalar"))
        assert resolve_kernel("sim") == "scalar"
        assert checked_kernel("device", check_protocol="off") == "scalar"

    def test_install_aligns_check_mode(self):
        set_default_policy(ExecutionPolicy(check_protocol="tolerant"))
        assert default_check_mode() == "tolerant"
        assert default_policy().check_protocol == "tolerant"

    def test_non_policy_rejected(self):
        with pytest.raises(ConfigError):
            set_default_policy("fast")

    def test_cache_tier_gating(self):
        assert ExecutionPolicy().persistent_caches()
        assert not ExecutionPolicy(cache_tier="memory").persistent_caches()
        assert ExecutionPolicy(cache_tier="memory").caches_enabled()
        assert not ExecutionPolicy(cache_tier="off").caches_enabled()
        with pytest.raises(ConfigError, match="cache tier"):
            ExecutionPolicy(cache_tier="tape")


class TestDeprecatedShims:
    """Satellite: the old flags keep working, warn once, and resolve to
    the byte-identical kernels their ``--kernel-policy`` twins pick."""

    def test_set_default_sim_kernel_warns_and_lands_as_override(self):
        from repro.sim.kernels import default_sim_kernel, set_default_sim_kernel

        with pytest.warns(DeprecationWarning, match="set_default_sim_kernel"):
            set_default_sim_kernel("scalar")
        assert default_policy().sim_kernel == "scalar"
        assert default_sim_kernel() == "scalar"

    def test_effective_sim_kernel_matches_checked_kernel(self):
        from repro.analysis.runner import effective_sim_kernel

        assert effective_sim_kernel("batched", "strict") == "scalar"
        assert effective_sim_kernel(None, "off") \
            == checked_kernel("sim", check_protocol="off")

    def _sweep(self, tmp_path, name, extra):
        out = tmp_path / name
        argv = ["sweep", "--dir", str(out), "--jobs", "1",
                "--mitigations", "Graphene", "--nrh", "128",
                "--requests", "300"] + extra
        assert main(argv) == 0
        rows = {p.name: p.read_bytes() for p in sorted(out.glob("*.json"))
                if p.name != REPORT_NAME}  # run metadata, not a result row
        assert rows
        return rows

    def test_cli_sim_kernel_flag_warns_once(self, tmp_path):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            self._sweep(tmp_path, "shim", ["--sim-kernel", "scalar"])
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert "--sim-kernel" in str(deprecations[0].message)

    def test_cli_shim_byte_identical_to_policy_flag(self, tmp_path, capsys):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            shim = self._sweep(tmp_path, "shim", ["--sim-kernel", "scalar"])
        policy = self._sweep(tmp_path, "policy", ["--kernel-policy", "scalar"])
        assert shim == policy

    def test_cli_device_kernel_shim_byte_identical(self, tmp_path, capsys):
        def campaign(name, extra):
            out = tmp_path / name
            assert main(["campaign", "--dir", str(out), "--jobs", "1",
                         "--modules", "M2", "--rows", "4"] + extra) == 0
            return (out / "M2.json").read_bytes()

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            shim = campaign("shim", ["--device-kernel", "scalar"])
        policy = campaign("policy", ["--kernel-policy", "scalar"])
        assert shim == policy


class TestCliPolicyWiring:
    def test_check_protocol_notes_once_per_invocation(self, tmp_path, capsys):
        out = tmp_path / "checked"
        assert main(["sweep", "--dir", str(out), "--jobs", "1",
                     "--mitigations", "Graphene,PARA", "--nrh", "128",
                     "--requests", "300", "--kernel-policy", "fast",
                     "--check-protocol", "tolerant"]) == 0
        err = capsys.readouterr().err
        assert err.count("oracle") == 1

    def test_sweep_prints_cache_summary(self, tmp_path, capsys):
        out = tmp_path / "sweep"
        assert main(["sweep", "--dir", str(out), "--jobs", "1",
                     "--mitigations", "Graphene", "--nrh", "128",
                     "--requests", "300"]) == 0
        stdout = capsys.readouterr().out
        assert "cache baseline:" in stdout
        assert "persisted=" in stdout

    def test_campaign_summary_includes_caches(self, tmp_path, capsys):
        out = tmp_path / "camp"
        assert main(["campaign", "--dir", str(out), "--jobs", "1",
                     "--modules", "M2", "--rows", "4"]) == 0
        assert "cache" in capsys.readouterr().out


class TestSingleResolutionSite:
    """Lint: kernel selection must not leak back into individual layers.

    Dispatching on an already-resolved name (``if kernel == "batched":``)
    is fine; *choosing* a kernel — forced-scalar assignments, check-mode
    conditionals picking kernel literals, or consulting the auto defaults
    — is only legal inside :mod:`repro.exec`.
    """

    BANNED = (
        # forced-oracle assignments (the old CLI/_apply_sim_kernel pattern)
        r'kernel\s*=\s*"scalar"',
        r"kernel\s*=\s*'scalar'",
        # per-layer auto defaults
        r"\bAUTO_KERNELS\b",
        # the forcing *decision* (the reason lives in validation.checker,
        # the decision in the policy)
        r"\brequires_scalar_oracle\b",
        # hardcoded fast-path defaults in signatures
        r'kernel:\s*str\s*=\s*"(vectorized|batched|compiled|stepping)"',
    )

    ALLOWED_DIRS = ("exec",)
    ALLOWED_FILES = {
        # the reason-side definition and its re-export
        "validation/checker.py": (r"\brequires_scalar_oracle\b",),
        "validation/__init__.py": (r"\brequires_scalar_oracle\b",),
    }

    def test_no_kernel_selection_outside_the_policy(self):
        offenders = []
        for path in sorted(SRC_ROOT.rglob("*.py")):
            rel = path.relative_to(SRC_ROOT).as_posix()
            if rel.split("/")[0] in self.ALLOWED_DIRS:
                continue
            text = path.read_text()
            for pattern in self.BANNED:
                if pattern in self.ALLOWED_FILES.get(rel, ()):
                    continue
                for match in re.finditer(pattern, text):
                    line = text.count("\n", 0, match.start()) + 1
                    offenders.append(f"{rel}:{line}: {pattern}")
        assert not offenders, (
            "kernel selection leaked outside repro.exec:\n"
            + "\n".join(offenders))

    def test_both_caches_are_the_shared_implementation(self):
        from repro.analysis.baselines import BaselineCache
        from repro.characterization.probecache import ProbeCache
        from repro.runtime.cache import DigestCache

        assert issubclass(ProbeCache, DigestCache)
        assert issubclass(BaselineCache, DigestCache)
        for path in ("characterization/probecache.py",
                     "analysis/baselines.py"):
            text = (SRC_ROOT / path).read_text()
            assert "OrderedDict" not in text, (
                f"{path} regrew its own LRU implementation")
