"""Tests for internal row address mapping."""

import pytest

from repro.dram.mapping import RowMapping, mapping_for_vendor
from repro.dram.vendor import Manufacturer
from repro.errors import ConfigError


class TestRowMapping:
    def test_sequential_identity(self):
        mapping = RowMapping(rows_per_bank=1024)
        assert mapping.logical_to_physical(100) == 100
        assert mapping.physical_to_logical(100) == 100

    def test_scrambled_is_involution(self):
        mapping = RowMapping(rows_per_bank=1024, scramble_mask=0b110)
        for row in (0, 1, 5, 100, 1023):
            physical = mapping.logical_to_physical(row)
            assert mapping.physical_to_logical(physical) == row

    def test_scrambled_is_bijective(self):
        mapping = RowMapping(rows_per_bank=256, scramble_mask=0b110)
        images = {mapping.logical_to_physical(r) for r in range(256)}
        assert images == set(range(256))

    def test_neighbors_sequential(self):
        mapping = RowMapping(rows_per_bank=1024)
        assert mapping.neighbors(100) == (99, 101)
        assert mapping.neighbors(100, distance=2) == (98, 102)

    def test_neighbors_at_edges(self):
        mapping = RowMapping(rows_per_bank=1024)
        assert mapping.neighbors(0) == (1,)
        assert mapping.neighbors(1023) == (1022,)

    def test_neighbors_under_scramble_are_physical(self):
        mapping = RowMapping(rows_per_bank=1024, scramble_mask=0b110)
        for neighbor in mapping.neighbors(100):
            assert mapping.physical_distance(100, neighbor) == 1

    def test_physical_distance(self):
        mapping = RowMapping(rows_per_bank=64, scramble_mask=0b110)
        a, b = 10, 20
        expected = abs(mapping.logical_to_physical(a)
                       - mapping.logical_to_physical(b))
        assert mapping.physical_distance(a, b) == expected

    def test_out_of_range_rejected(self):
        mapping = RowMapping(rows_per_bank=64)
        with pytest.raises(ConfigError):
            mapping.logical_to_physical(64)
        with pytest.raises(ConfigError):
            mapping.neighbors(-1)

    def test_invalid_distance_rejected(self):
        with pytest.raises(ConfigError):
            RowMapping(rows_per_bank=64).neighbors(3, distance=0)


class TestVendorMappings:
    def test_s_uses_scrambling(self):
        mapping = mapping_for_vendor(Manufacturer.S, 1024)
        assert mapping.scramble_mask != 0

    def test_h_and_m_sequential(self):
        for vendor in (Manufacturer.H, Manufacturer.M):
            assert mapping_for_vendor(vendor, 1024).scramble_mask == 0

    def test_scrambled_neighbors_not_logical(self):
        mapping = mapping_for_vendor(Manufacturer.S, 1024)
        # Under scrambling, at least some rows' physical neighbors differ
        # from their logical neighbors.
        differs = any(set(mapping.neighbors(r)) != {r - 1, r + 1}
                      for r in range(1, 1023))
        assert differs
