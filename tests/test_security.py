"""End-to-end security tests of the §8.2 argument.

These close the loop between the simulator-side mitigations and the
device-model physics: a worst-case double-sided attacker runs against a
mitigation, preventive refreshes land on the simulated victim row at
PaCRAM-chosen latencies, and the victim must never flip.
"""

import pytest

from repro.core.config import PaCRAMConfig
from repro.core.security import secure_configuration, worst_case_attack
from repro.dram.module import DRAMModule
from repro.errors import ConfigError
from repro.mitigations import make_mitigation


def fresh_module(module_id: str = "S6") -> DRAMModule:
    return DRAMModule(module_id, seed=2025)


class TestUndefendedBaseline:
    def test_attacker_wins_without_mitigation(self):
        module = fresh_module()
        outcome = worst_case_attack(module, make_mitigation("None", 1),
                                    duration_acts=100_000)
        assert not outcome.defended
        assert outcome.preventive_refreshes == 0


class TestDefendedNominal:
    @pytest.mark.parametrize("mitigation_name", ["RFM", "PRAC", "Graphene"])
    def test_deterministic_mitigations_defend(self, mitigation_name):
        module = fresh_module()
        nrh = 512  # well below the module's true threshold: aggressive
        outcome = worst_case_attack(
            module, make_mitigation(mitigation_name, nrh),
            duration_acts=100_000)
        assert outcome.defended, mitigation_name
        assert outcome.preventive_refreshes > 0

    def test_graphene_bounds_unrefreshed_run(self):
        module = fresh_module()
        mitigation = make_mitigation("Graphene", 512)
        outcome = worst_case_attack(module, mitigation,
                                    duration_acts=50_000)
        # Misra-Gries triggers within the threshold plus chunk granularity.
        assert outcome.max_unrefreshed_run <= mitigation.threshold + 64


class TestDefendedWithPaCRAM:
    @pytest.mark.parametrize("module_id,factor", [
        ("S6", 0.36), ("H5", 0.36), ("M2", 0.18)])
    def test_scaled_mitigation_with_partial_refreshes_defends(
            self, module_id, factor):
        # The §8.2 security claim: mitigation at the scaled threshold +
        # partial preventive refreshes never lets the victim flip.
        module = fresh_module(module_id)
        pacram = PaCRAMConfig.from_catalog(module_id, factor)
        nrh = secure_configuration(module_id, 512, pacram)
        outcome = worst_case_attack(
            module, make_mitigation("Graphene", nrh),
            duration_acts=100_000, pacram=pacram)
        assert outcome.defended, (module_id, factor)

    def test_unscaled_threshold_is_weaker(self):
        # Configuring for the *nominal* threshold while restoring partially
        # leaves less margin than the PaCRAM-scaled configuration — the
        # reason §8.2 mandates the adjustment.
        module_id = "S7"
        pacram = PaCRAMConfig.from_catalog(module_id, 0.27)  # ratio 0.5
        scaled = secure_configuration(module_id, 2048, pacram)
        assert scaled < 2048

        naive = worst_case_attack(
            fresh_module(module_id), make_mitigation("Graphene", 2048),
            duration_acts=120_000, pacram=pacram)
        adjusted = worst_case_attack(
            fresh_module(module_id), make_mitigation("Graphene", scaled),
            duration_acts=120_000, pacram=pacram)
        assert adjusted.defended
        assert adjusted.max_unrefreshed_run < naive.max_unrefreshed_run

    def test_partial_refreshes_cheaper_but_more_frequent(self):
        module_id = "S6"
        pacram = PaCRAMConfig.from_catalog(module_id, 0.36)
        nominal = worst_case_attack(
            fresh_module(module_id), make_mitigation("Graphene", 512),
            duration_acts=80_000)
        scaled_nrh = secure_configuration(module_id, 512, pacram)
        partial = worst_case_attack(
            fresh_module(module_id), make_mitigation("Graphene", scaled_nrh),
            duration_acts=80_000, pacram=pacram)
        # The scaled threshold triggers at least as many refreshes (§1:
        # "slightly more preventive refreshes", 0.54 % at module scale).
        assert partial.preventive_refreshes >= nominal.preventive_refreshes


class TestValidation:
    def test_mismatched_config_rejected(self):
        pacram = PaCRAMConfig.from_catalog("S6", 0.36)
        with pytest.raises(ConfigError):
            secure_configuration("H5", 512, pacram)

    def test_invalid_duration_rejected(self):
        with pytest.raises(ConfigError):
            worst_case_attack(fresh_module(), make_mitigation("None", 1),
                              duration_acts=0)

    def test_edge_victim_rejected(self):
        module = fresh_module("H5")
        with pytest.raises(ConfigError):
            worst_case_attack(module, make_mitigation("None", 1), victim=0)
