"""Tests for system config and MOP address mapping."""

import pytest

from repro.errors import ConfigError
from repro.sim.addrmap import AddressMapper, DecodedAddress
from repro.sim.config import SystemConfig


class TestSystemConfig:
    def test_table2_defaults(self):
        config = SystemConfig()
        assert config.core_clock_ghz == 3.2
        assert config.issue_width == 4
        assert config.instruction_window == 128
        assert config.channels == 1
        assert config.ranks == 2
        assert config.bank_groups == 8
        assert config.banks_per_group == 2
        assert config.rows_per_bank == 65_536
        assert config.read_queue_depth == 64

    def test_derived_counts(self):
        config = SystemConfig()
        assert config.banks_per_rank == 16
        assert config.total_banks == 32
        assert config.row_bytes == 8192

    def test_core_cycle(self):
        assert SystemConfig().core_cycle_ns == pytest.approx(1 / 3.2)

    def test_validation(self):
        with pytest.raises(ConfigError):
            SystemConfig(num_cores=0)
        with pytest.raises(ConfigError):
            SystemConfig(write_low_watermark=0.9, write_high_watermark=0.5)


class TestAddressMapper:
    def test_round_trip(self):
        mapper = AddressMapper(SystemConfig())
        for address in (0, 1, 17, 4095, 123_456_789):
            decoded = mapper.decode(address)
            assert mapper.encode(decoded) == address % mapper.total_lines

    def test_bijective_over_a_window(self):
        mapper = AddressMapper(SystemConfig())
        decoded = {tuple(vars(mapper.decode(a)).values()) for a in range(4096)}
        assert len(decoded) == 4096

    def test_mop_run_stays_in_row(self):
        # Four consecutive lines share channel/rank/bank/row (MOP run).
        mapper = AddressMapper(SystemConfig())
        first = mapper.decode(0)
        for offset in range(1, 4):
            other = mapper.decode(offset)
            assert other.row == first.row
            assert other.bank == first.bank
            assert other.bank_group == first.bank_group

    def test_next_run_changes_bank(self):
        mapper = AddressMapper(SystemConfig())
        assert mapper.decode(4).bank != mapper.decode(0).bank or \
            mapper.decode(4).bank_group != mapper.decode(0).bank_group

    def test_coordinates_in_range(self):
        config = SystemConfig()
        mapper = AddressMapper(config)
        for address in range(0, 100_000, 997):
            d = mapper.decode(address)
            assert 0 <= d.channel < config.channels
            assert 0 <= d.rank < config.ranks
            assert 0 <= d.bank_group < config.bank_groups
            assert 0 <= d.bank < config.banks_per_group
            assert 0 <= d.row < config.rows_per_bank
            assert 0 <= d.column < config.columns_per_row

    def test_flat_bank_unique(self):
        config = SystemConfig()
        mapper = AddressMapper(config)
        flats = set()
        for rank in range(config.ranks):
            for group in range(config.bank_groups):
                for bank in range(config.banks_per_group):
                    decoded = DecodedAddress(0, rank, group, bank, 0, 0)
                    flats.add(mapper.flat_bank_of(decoded))
        assert flats == set(range(config.total_banks))

    def test_wraps_modulo_capacity(self):
        mapper = AddressMapper(SystemConfig())
        total = mapper.total_lines
        assert mapper.decode(total + 5) == mapper.decode(5)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ConfigError):
            AddressMapper(SystemConfig(bank_groups=3, banks_per_group=2))
