"""Tests for the test-program ISA and builder."""

import pytest

from repro.bender.isa import Act, Hammer, Pre, Restore, Sleep, SleepUntil
from repro.bender.program import TestProgram
from repro.dram.disturbance import DataPattern
from repro.errors import ProgramError


class TestInstructionValidation:
    def test_act_requires_positive_wait(self):
        with pytest.raises(ProgramError):
            Act(0, 10, 0.0)

    def test_pre_requires_positive_wait(self):
        with pytest.raises(ProgramError):
            Pre(0, -1.0)

    def test_sleep_rejects_negative(self):
        with pytest.raises(ProgramError):
            Sleep(-5.0)

    def test_sleep_until_rejects_negative(self):
        with pytest.raises(ProgramError):
            SleepUntil(-5.0)

    def test_hammer_requires_rows(self):
        with pytest.raises(ProgramError):
            Hammer(0, (), 100)

    def test_hammer_rejects_negative_count(self):
        with pytest.raises(ProgramError):
            Hammer(0, (1,), -1)

    def test_restore_validation(self):
        with pytest.raises(ProgramError):
            Restore(0, 1, 0.0, 5)
        with pytest.raises(ProgramError):
            Restore(0, 1, 12.0, -1)


class TestProgramBuilder:
    def test_act_defaults_to_nominal_tras(self):
        program = TestProgram().act(0, 10)
        instruction = program.instructions[0]
        assert isinstance(instruction, Act)
        assert instruction.wait_ns == program.timing.tRAS

    def test_builder_chains(self):
        program = TestProgram().act(0, 10).pre(0).sleep(100.0)
        assert len(program) == 3

    def test_init_rows_writes_victim_and_aggressors(self):
        program = TestProgram()
        program.init_rows(0, 5, (4, 6), DataPattern.ROW_STRIPE)
        assert len(program) == 3

    def test_partial_restoration_unrolls_small_counts(self):
        program = TestProgram()
        program.partial_restoration(0, 5, 12.0, 3)
        assert len(program) == 6  # 3x (ACT + PRE)

    def test_partial_restoration_bulk_macro_for_large_counts(self):
        program = TestProgram()
        program.partial_restoration(0, 5, 12.0, 10_000)
        assert len(program) == 1
        assert isinstance(program.instructions[0], Restore)

    def test_partial_restoration_rejects_super_nominal(self):
        with pytest.raises(ProgramError):
            TestProgram().partial_restoration(0, 5, 50.0, 1)

    def test_hammer_doublesided_limits_rows(self):
        with pytest.raises(ProgramError):
            TestProgram().hammer_doublesided(0, (1, 2, 3), 100)

    def test_check_bitflips_requires_key(self):
        with pytest.raises(ProgramError):
            TestProgram().check_bitflips(0, 5, key="")

    def test_estimated_duration_counts_waits(self):
        program = TestProgram()
        program.act(0, 5, wait_ns=33.0).pre(0, wait_ns=15.0)
        assert program.estimated_duration_ns() == pytest.approx(48.0)

    def test_estimated_duration_hammer(self):
        program = TestProgram()
        program.hammer_doublesided(0, (1, 2), 100)
        expected = 100 * 2 * program.timing.tRC
        assert program.estimated_duration_ns() == pytest.approx(expected)

    def test_estimated_duration_sleep_until(self):
        program = TestProgram().sleep_until(64e6)
        assert program.estimated_duration_ns() == pytest.approx(64e6)
