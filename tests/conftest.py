"""Shared fixtures: small hosts, configs, and traces for fast tests."""

from __future__ import annotations

import pytest

from repro.bender.host import DRAMBenderHost
from repro.exec import reset_default_policy
from repro.runtime.cache import reset_cache_counters
from repro.runtime.failures import reset_failure_rules
from repro.sim.config import SystemConfig
from repro.workloads.synth import TraceSpec, generate_trace


@pytest.fixture(autouse=True)
def _fresh_execution_state():
    """Isolate the process-wide execution policy, caches, failure rules."""
    reset_default_policy()
    reset_cache_counters()
    reset_failure_rules()
    yield
    reset_default_policy()
    reset_cache_counters()
    reset_failure_rules()


@pytest.fixture(scope="session")
def host_s6() -> DRAMBenderHost:
    """A host connected to module S6 (the PaCRAM-S reference module)."""
    return DRAMBenderHost("S6", seed=2025)


@pytest.fixture(scope="session")
def host_h5() -> DRAMBenderHost:
    """A host connected to module H5 (the PaCRAM-H reference module)."""
    return DRAMBenderHost("H5", seed=2025)


@pytest.fixture()
def single_core_config() -> SystemConfig:
    return SystemConfig(num_cores=1)


@pytest.fixture()
def quad_core_config() -> SystemConfig:
    return SystemConfig(num_cores=4)


@pytest.fixture(scope="session")
def small_trace():
    """A short, memory-intensive trace for simulator tests."""
    spec = TraceSpec(name="test.intense", mpki=30.0, locality=0.5,
                     footprint_lines=4096, write_fraction=0.3)
    return generate_trace(spec, requests=1500, seed=3)


@pytest.fixture(scope="session")
def hot_trace():
    """A trace with strong hot-row skew (exercises row trackers)."""
    spec = TraceSpec(name="test.hot", mpki=25.0, locality=0.2,
                     footprint_lines=8192, write_fraction=0.2,
                     hot_fraction=0.5, hot_lines=64)
    return generate_trace(spec, requests=1500, seed=5)
