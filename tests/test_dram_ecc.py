"""Tests for the SEC-DED ECC substrate."""

import pytest

from repro.dram.ecc import (
    CODEWORD_BITS,
    DecodeResult,
    EccOutcome,
    decode,
    effective_failure_probability,
    encode,
    row_outcome,
)
from repro.errors import ConfigError

WORDS = (0, 1, 0xDEADBEEFCAFEBABE, (1 << 64) - 1, 0x0123456789ABCDEF)


class TestCodec:
    @pytest.mark.parametrize("word", WORDS)
    def test_round_trip_clean(self, word):
        result = decode(encode(word))
        assert result.data == word
        assert result.clean

    @pytest.mark.parametrize("word", WORDS[:3])
    def test_corrects_any_single_bit_error(self, word):
        codeword = encode(word)
        for position in range(CODEWORD_BITS):
            corrupted = codeword ^ (1 << position)
            result = decode(corrupted)
            assert result.data == word, f"bit {position}"
            assert result.corrected
            assert not result.detected_uncorrectable

    def test_detects_double_bit_errors(self):
        codeword = encode(0xDEADBEEFCAFEBABE)
        detected = 0
        trials = 0
        for a in range(0, CODEWORD_BITS, 7):
            for b in range(a + 1, CODEWORD_BITS, 11):
                trials += 1
                result = decode(codeword ^ (1 << a) ^ (1 << b))
                if result.detected_uncorrectable:
                    detected += 1
        assert detected == trials  # SEC-DED guarantees double detection

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigError):
            encode(1 << 64)
        with pytest.raises(ConfigError):
            decode(1 << 72)


class TestRowOutcome:
    def test_no_flips_no_errors(self):
        outcome = row_outcome(0)
        assert outcome.corrected_words == 0
        assert outcome.survives

    def test_sparse_flips_absorbed(self):
        # A few random flips over 1024 words: SEC-DED corrects them all.
        outcome = row_outcome(3)
        assert outcome.survives
        assert outcome.corrected_words == pytest.approx(3, rel=0.05)

    def test_dense_flips_break_through(self):
        outcome = row_outcome(5_000)
        assert not outcome.survives
        assert outcome.uncorrectable_words > 0

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            row_outcome(-1)


class TestPaCRAMInteraction:
    def test_ecc_absorbs_sparse_retention_failures(self):
        # §10: weak-cell retention failures (1-2 cells/row) vanish behind
        # SEC-DED, widening PaCRAM's safe envelope.
        assert effective_failure_probability(1e-4, flips_when_failing=1) == 0.0

    def test_ecc_does_not_absorb_dense_failures(self):
        assert effective_failure_probability(
            1e-4, flips_when_failing=5_000) == pytest.approx(1e-4)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ConfigError):
            effective_failure_probability(1.5)


class TestDataclasses:
    def test_decode_result_clean_flag(self):
        assert DecodeResult(0, False, False).clean
        assert not DecodeResult(0, True, False).clean

    def test_outcome_survival_boundary(self):
        assert EccOutcome(10.0, 0.4).survives
        assert not EccOutcome(0.0, 0.6).survives
