"""Tests for characterization result containers."""

import pytest

from repro.characterization.results import (
    ModuleCharacterization,
    RowMeasurement,
)
from repro.errors import CharacterizationError


def measurement(bank=0, row=10, factor=1.0, n_pr=1, temp=80.0,
                nrh=8000, ber=0.001) -> RowMeasurement:
    return RowMeasurement(bank=bank, row=row, tras_factor=factor, n_pr=n_pr,
                          temperature_c=temp, wcdp="RS", nrh=nrh, ber=ber)


class TestRowMeasurement:
    def test_vulnerable(self):
        assert measurement(nrh=5000).vulnerable()
        assert not measurement(nrh=0).vulnerable()
        assert not measurement(nrh=None).vulnerable()

    def test_retention_failed(self):
        assert measurement(nrh=0).retention_failed()
        assert not measurement(nrh=5000).retention_failed()
        assert not measurement(nrh=None).retention_failed()


class TestModuleCharacterization:
    def test_at_filters(self):
        result = ModuleCharacterization("S6", seed=1)
        result.add(measurement(row=1, factor=1.0))
        result.add(measurement(row=1, factor=0.36))
        result.add(measurement(row=2, factor=0.36, n_pr=8))
        assert len(result.at(tras_factor=0.36)) == 2
        assert len(result.at(tras_factor=0.36, n_pr=8)) == 1

    def test_lowest_nrh(self):
        result = ModuleCharacterization("S6", seed=1)
        result.add(measurement(row=1, nrh=9000))
        result.add(measurement(row=2, nrh=7800))
        assert result.lowest_nrh(1.0) == 7800

    def test_lowest_nrh_retention_dominates(self):
        result = ModuleCharacterization("S6", seed=1)
        result.add(measurement(row=1, nrh=9000))
        result.add(measurement(row=2, nrh=0))
        assert result.lowest_nrh(1.0) == 0

    def test_lowest_nrh_all_invulnerable(self):
        result = ModuleCharacterization("H0", seed=1)
        result.add(measurement(row=1, nrh=None))
        assert result.lowest_nrh(1.0) is None

    def test_lowest_nrh_missing_point_raises(self):
        result = ModuleCharacterization("S6", seed=1)
        with pytest.raises(CharacterizationError):
            result.lowest_nrh(0.45)

    def test_normalized_nrh(self):
        result = ModuleCharacterization("S6", seed=1)
        result.add(measurement(row=1, factor=1.0, nrh=10_000))
        result.add(measurement(row=1, factor=0.36, nrh=8_000))
        values = result.normalized_nrh(0.36)
        assert values == [pytest.approx(0.8)]

    def test_normalized_ber(self):
        result = ModuleCharacterization("S6", seed=1)
        result.add(measurement(row=1, factor=1.0, ber=0.001))
        result.add(measurement(row=1, factor=0.36, ber=0.004))
        assert result.normalized_ber(0.36) == [pytest.approx(4.0)]

    def test_json_round_trip(self, tmp_path):
        result = ModuleCharacterization("S6", seed=42)
        result.add(measurement(row=1, nrh=None))
        result.add(measurement(row=2, factor=0.36, nrh=0, ber=0.5))
        path = tmp_path / "s6.json"
        result.save(path)
        loaded = ModuleCharacterization.load(path)
        assert loaded.module_id == "S6"
        assert loaded.seed == 42
        assert loaded.measurements == result.measurements
