"""Tests for the command-level DRAM module device model."""

import pytest

from repro.dram.disturbance import DataPattern
from repro.dram.module import DRAMModule
from repro.errors import DeviceError
from repro.units import MS


@pytest.fixture()
def module() -> DRAMModule:
    return DRAMModule("S6", seed=2025)


def prepare_rows(module: DRAMModule, victim: int,
                 pattern=DataPattern.ROW_STRIPE) -> tuple[int, ...]:
    aggressors = module.mapping.neighbors(victim, 1)
    module.write_row(0, victim, pattern)
    for row in aggressors:
        module.write_row(0, row, pattern)
    return aggressors


class TestBasicOperations:
    def test_write_then_read_no_flips(self, module):
        module.write_row(0, 50, DataPattern.CHECKERBOARD)
        assert module.read_row_bitflips(0, 50) == 0

    def test_read_uninitialized_rejected(self, module):
        with pytest.raises(DeviceError):
            module.read_row_bitflips(0, 51)

    def test_clock_advances(self, module):
        start = module.clock_ns
        module.activate(0, 10)
        assert module.clock_ns > start

    def test_activate_with_reduced_tras(self, module):
        module.write_row(0, 60, DataPattern.ROW_STRIPE)
        module.activate(0, 60, tras_ns=12.0)
        state = module.row_state(0, 60)
        assert state.restore_factor == pytest.approx(12.0 / 33.0)
        assert state.consecutive_partial == 1

    def test_full_activation_resets_partial_streak(self, module):
        module.write_row(0, 60, DataPattern.ROW_STRIPE)
        module.activate(0, 60, tras_ns=12.0)
        module.activate(0, 60, tras_ns=12.0)
        assert module.row_state(0, 60).consecutive_partial == 2
        module.activate(0, 60)  # nominal
        assert module.row_state(0, 60).consecutive_partial == 0

    def test_partial_restore_bulk(self, module):
        module.write_row(0, 60, DataPattern.ROW_STRIPE)
        module.partial_restore(0, 60, 12.0, 500)
        assert module.row_state(0, 60).consecutive_partial == 500

    def test_invalid_address_rejected(self, module):
        with pytest.raises(DeviceError):
            module.write_row(99, 0, DataPattern.ROW_STRIPE)

    def test_negative_elapse_rejected(self, module):
        with pytest.raises(DeviceError):
            module.elapse(-1.0)


class TestHammering:
    def test_enough_hammers_flip(self, module):
        victim = 200
        aggressors = prepare_rows(module, victim)
        module.hammer(0, aggressors, 100_000)
        module.elapse(64 * MS)
        assert module.read_row_bitflips(0, victim) > 0

    def test_few_hammers_do_not_flip(self, module):
        victim = 200
        aggressors = prepare_rows(module, victim)
        module.hammer(0, aggressors, 500)
        module.elapse(64 * MS)
        assert module.read_row_bitflips(0, victim) == 0

    def test_refresh_heals_disturbance(self, module):
        victim = 200
        aggressors = prepare_rows(module, victim)
        module.hammer(0, aggressors, 100_000)
        module.activate(0, victim)  # preventive refresh, nominal latency
        module.elapse(64 * MS)
        assert module.read_row_bitflips(0, victim) == 0

    def test_partial_restoration_weakens_victim(self, module):
        # The core phenomenon: a partially restored victim flips at a
        # hammer count that a fully restored victim survives.
        victim = 200
        pop = module.row_population(0, victim)
        pattern = pop.worst_case_pattern()
        nrh = pop.effective_nrh(pattern=pattern)
        hammer_count = int(nrh * 0.85)  # below nominal threshold

        aggressors = prepare_rows(module, victim, pattern)
        module.hammer(0, aggressors, hammer_count)
        module.elapse(64 * MS)
        assert module.read_row_bitflips(0, victim) == 0

        aggressors = prepare_rows(module, victim, pattern)
        module.activate(0, victim, tras_ns=33.0 * 0.27)  # partial restore
        module.hammer(0, aggressors, hammer_count)
        module.elapse(64 * MS)
        assert module.read_row_bitflips(0, victim) > 0

    def test_hammer_accounts_time(self, module):
        start = module.clock_ns
        module.hammer(0, (10, 12), 1000)
        expected = 2 * 1000 * module.timing.tRC
        assert module.clock_ns - start == pytest.approx(expected)

    def test_negative_count_rejected(self, module):
        with pytest.raises(DeviceError):
            module.hammer(0, (10,), -1)


class TestRetentionBehavior:
    def test_partial_restore_at_018_causes_retention_flips(self):
        # Table 3 red cell: S6 at 0.18 tRAS shows N_RH = 0 behavior.
        module = DRAMModule("S6", seed=2025)
        flips_found = 0
        for victim in range(2, 120):
            module.write_row(0, victim, DataPattern.SOLID_ONES)
            module.activate(0, victim, tras_ns=33.0 * 0.18)
            module.elapse(64 * MS)
            if module.read_row_bitflips(0, victim) > 0:
                flips_found += 1
        assert flips_found > 0

    def test_nominal_restore_retains(self):
        module = DRAMModule("S6", seed=2025)
        module.write_row(0, 30, DataPattern.SOLID_ONES)
        module.activate(0, 30)
        module.elapse(64 * MS)
        assert module.read_row_bitflips(0, 30) == 0


class TestDeterminism:
    def test_same_seed_same_flips(self):
        counts = []
        for _ in range(2):
            module = DRAMModule("H5", seed=77)
            victim = 300
            aggressors = prepare_rows(module, victim)
            module.hammer(0, aggressors, 80_000)
            module.elapse(64 * MS)
            counts.append(module.read_row_bitflips(0, victim))
        assert counts[0] == counts[1]

    def test_different_seed_different_rows(self):
        a = DRAMModule("H5", seed=1).row_population(0, 5).traits.base_nrh
        b = DRAMModule("H5", seed=2).row_population(0, 5).traits.base_nrh
        assert a != b
